package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"subgemini/internal/faults"
	"subgemini/internal/obs"
)

// doWithHeader is do() plus request headers.
func doWithHeader(t *testing.T, h http.Handler, method, path string, body any, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	switch b := body.(type) {
	case nil:
		rd = strings.NewReader("")
	case string:
		rd = strings.NewReader(b)
	default:
		js, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(js))
	}
	req := httptest.NewRequest(method, path, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// debugList fetches and decodes GET /debug/requests.
func debugList(t *testing.T, s *Server, query string) []obs.TimelineJSON {
	t.Helper()
	rec := do(t, s, "GET", "/debug/requests"+query, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/requests%s: status %d: %s", query, rec.Code, rec.Body.String())
	}
	var body struct {
		Count    int                `json:"count"`
		Requests []obs.TimelineJSON `json:"requests"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("invalid list body: %v\n%s", err, rec.Body.String())
	}
	return body.Requests
}

// debugFind fetches and decodes GET /debug/requests/{id}.
func debugFind(t *testing.T, s *Server, id string) []obs.TimelineJSON {
	t.Helper()
	rec := do(t, s, "GET", "/debug/requests/"+id, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/requests/%s: status %d: %s", id, rec.Code, rec.Body.String())
	}
	var body struct {
		RequestID string             `json:"request_id"`
		Timelines []obs.TimelineJSON `json:"timelines"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("invalid detail body: %v\n%s", err, rec.Body.String())
	}
	return body.Timelines
}

// TestRequestIDMintAndEcho: every response carries X-Request-Id; a valid
// inbound ID is honored, a malformed one is discarded and re-minted.
func TestRequestIDMintAndEcho(t *testing.T) {
	s, _ := newAdderServer(t, nil)

	rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"})
	if rec.Code != http.StatusOK {
		t.Fatalf("match: status %d: %s", rec.Code, rec.Body.String())
	}
	if id := rec.Header().Get("X-Request-Id"); id == "" {
		t.Error("200 response has no X-Request-Id header")
	}

	rec = doWithHeader(t, s, "GET", "/healthz", nil, map[string]string{"X-Request-Id": "trace-me-42"})
	if got := rec.Header().Get("X-Request-Id"); got != "trace-me-42" {
		t.Errorf("inbound ID echoed as %q, want trace-me-42", got)
	}

	rec = doWithHeader(t, s, "GET", "/healthz", nil, map[string]string{"X-Request-Id": "bad id with junk!"})
	got := rec.Header().Get("X-Request-Id")
	if got == "" || strings.ContainsAny(got, " !") {
		t.Errorf("malformed inbound ID handled as %q, want a re-minted clean ID", got)
	}
}

// TestRequestIDOnErrorResponses: the header is present on shed 429s and on
// fault-injected 503s too — the failure paths are exactly where the ID is
// needed.
func TestRequestIDOnErrorResponses(t *testing.T) {
	defer faults.Reset()
	// A 1-byte heap budget sheds every bulk request deterministically.
	s, _ := newAdderServer(t, func(c *Config) {
		c.ShedMemoryBytes = 1
		c.FlightSampleN = 1
	})

	rec := do(t, s, "POST", "/v1/match/batch", BatchRequest{Requests: []MatchRequest{{Pattern: "FA"}}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("batch under memory shed: status %d, want 429", rec.Code)
	}
	shedID := rec.Header().Get("X-Request-Id")
	if shedID == "" {
		t.Error("429 response has no X-Request-Id header")
	}

	faults.Arm("server.handler", faults.Spec{Mode: faults.ModeError, Count: 1})
	rec = do(t, s, "GET", "/v1/circuits", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("fault-injected request: status %d, want 503", rec.Code)
	}
	faultID := rec.Header().Get("X-Request-Id")
	if faultID == "" {
		t.Error("503 response has no X-Request-Id header")
	}

	// Both land in the flight recorder, findable by their IDs.
	for _, id := range []string{shedID, faultID} {
		tls := debugFind(t, s, id)
		if len(tls) != 1 {
			t.Errorf("recorder holds %d timelines for %s, want 1", len(tls), id)
		}
	}
	// The shed one was kept for cause, not sampling, and carries the
	// shed-check span that fired.
	tls := debugFind(t, s, shedID)
	if tls[0].KeepReason != obs.KeepShed {
		t.Errorf("shed timeline kept for %q, want %q", tls[0].KeepReason, obs.KeepShed)
	}
	hasShedCheck := false
	for _, sp := range tls[0].Spans {
		if sp.Kind == obs.KindShedCheck && sp.Attrs["shed"] != "" {
			hasShedCheck = true
		}
	}
	if !hasShedCheck {
		t.Errorf("shed timeline spans %+v carry no shed-check span with a shed reason", tls[0].Spans)
	}
}

// TestDebugRequestsTimeline: given only the X-Request-Id of a match, the
// detail endpoint reconstructs the request's path through the daemon —
// pattern lookup, queue wait, store get, Phase I, Phase II — with
// durations.
func TestDebugRequestsTimeline(t *testing.T) {
	s, _ := newAdderServer(t, func(c *Config) { c.FlightSampleN = 1 })

	rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"})
	if rec.Code != http.StatusOK {
		t.Fatalf("match: status %d: %s", rec.Code, rec.Body.String())
	}
	id := rec.Header().Get("X-Request-Id")

	tls := debugFind(t, s, id)
	if len(tls) != 1 {
		t.Fatalf("recorder holds %d timelines for %s, want 1", len(tls), id)
	}
	tl := tls[0]
	if tl.Status != http.StatusOK || tl.Method != "POST" || tl.Path != "/v1/match" {
		t.Errorf("timeline header = %+v, want 200 POST /v1/match", tl)
	}
	byKind := map[string]obs.SpanJSON{}
	for _, sp := range tl.Spans {
		if sp.Open {
			t.Errorf("span %s left open", sp.Kind)
		}
		byKind[sp.Kind] = sp
	}
	for _, kind := range []string{obs.KindCacheLookup, obs.KindQueueWait, obs.KindStoreGet, obs.KindPhase1, obs.KindPhase2} {
		if _, ok := byKind[kind]; !ok {
			t.Errorf("timeline has no %s span; spans: %+v", kind, tl.Spans)
		}
	}
	if byKind[obs.KindPhase2].Attrs["candidates"] == "" {
		t.Errorf("phase2 span %+v has no candidates attr", byKind[obs.KindPhase2])
	}

	// Unknown IDs 404.
	if rec := do(t, s, "GET", "/debug/requests/not-recorded", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown ID: status %d, want 404", rec.Code)
	}
}

// TestDebugRequestsFilters: list filtering by path, limit, and outcome.
func TestDebugRequestsFilters(t *testing.T) {
	s, _ := newAdderServer(t, func(c *Config) { c.FlightSampleN = 1 })

	for i := 0; i < 3; i++ {
		if rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"}); rec.Code != http.StatusOK {
			t.Fatalf("match %d: status %d", i, rec.Code)
		}
	}
	do(t, s, "GET", "/healthz", nil)

	all := debugList(t, s, "")
	if len(all) < 4 {
		t.Fatalf("list holds %d timelines, want >= 4", len(all))
	}
	// Newest first: the /healthz probe leads.
	if all[0].Path != "/healthz" {
		t.Errorf("newest timeline is %s, want /healthz", all[0].Path)
	}

	matches := debugList(t, s, "?path=/v1/match")
	if len(matches) != 3 {
		t.Errorf("path filter returned %d timelines, want 3", len(matches))
	}
	for _, tl := range matches {
		if tl.Path != "/v1/match" {
			t.Errorf("path filter leaked %s", tl.Path)
		}
	}

	if got := debugList(t, s, "?limit=2"); len(got) != 2 {
		t.Errorf("limit=2 returned %d timelines", len(got))
	}
	if got := debugList(t, s, "?outcome=shed"); len(got) != 0 {
		t.Errorf("outcome=shed returned %d timelines, want 0 (nothing shed)", len(got))
	}
}

// TestJobInheritsRequestID: an async job's execution appears in the flight
// recorder under the submitting request's ID — the submit response and the
// job record both carry it, and the detail endpoint returns the HTTP
// timeline plus the job timeline with its queue-wait span.
func TestJobInheritsRequestID(t *testing.T) {
	s, _ := newAdderServer(t, func(c *Config) { c.FlightSampleN = 1 })

	rec := do(t, s, "POST", "/v1/jobs", JobRequest{Kind: "match", Match: &MatchRequest{Pattern: "FA"}})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", rec.Code, rec.Body.String())
	}
	id := rec.Header().Get("X-Request-Id")
	var view struct {
		ID        string `json:"id"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.RequestID != id {
		t.Errorf("job record request_id %q, want the submit's ID %q", view.RequestID, id)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		rec = do(t, s, "GET", "/v1/jobs/"+view.ID, nil)
		var jv struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &jv); err != nil {
			t.Fatal(err)
		}
		if jv.State == "done" {
			break
		}
		if jv.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %q: %s", jv.State, rec.Body.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	tls := debugFind(t, s, id)
	if len(tls) != 2 {
		t.Fatalf("recorder holds %d timelines for %s, want 2 (http + job)", len(tls), id)
	}
	// Oldest first: the HTTP submit finished before the job did.
	if tls[0].Scope != "http" || tls[1].Scope != "job:match" {
		t.Errorf("scopes = %q, %q; want http then job:match", tls[0].Scope, tls[1].Scope)
	}
	kinds := map[string]bool{}
	for _, sp := range tls[1].Spans {
		kinds[sp.Kind] = true
	}
	for _, kind := range []string{obs.KindQueueWait, obs.KindPhase1, obs.KindPhase2} {
		if !kinds[kind] {
			t.Errorf("job timeline has no %s span; spans: %+v", kind, tls[1].Spans)
		}
	}
}

// TestTelemetryMetrics: the three new families render, with fixed label
// sets present even at zero.
func TestTelemetryMetrics(t *testing.T) {
	s, _ := newAdderServer(t, func(c *Config) { c.FlightSampleN = 1 })

	if rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"}); rec.Code != http.StatusOK {
		t.Fatalf("match: status %d", rec.Code)
	}
	met := parseMetrics(t, do(t, s, "GET", "/metrics", nil).Body.String())

	if v, ok := met["subgeminid_slow_requests_total"]; !ok || v != 0 {
		t.Errorf("slow_requests_total = %v, %v; want present at 0", v, ok)
	}
	for _, kind := range []string{obs.KindPhase1, obs.KindPhase2, obs.KindQueueWait, obs.KindStoreGet} {
		key := fmt.Sprintf("subgeminid_request_spans_total{kind=%q}", kind)
		if met[key] < 1 {
			t.Errorf("%s = %v, want >= 1", key, met[key])
		}
	}
	for _, reason := range obs.KeepReasons {
		key := fmt.Sprintf("subgeminid_flight_recorder_kept_total{reason=%q}", reason)
		if _, ok := met[key]; !ok {
			t.Errorf("%s missing from dump", key)
		}
	}
	if key := fmt.Sprintf("subgeminid_flight_recorder_kept_total{reason=%q}", obs.KeepSampled); met[key] < 1 {
		t.Errorf("%s = %v, want >= 1 at sample rate 1", key, met[key])
	}
}

// TestSlowRequestAlwaysKept: a match slower than the threshold is kept for
// cause and counted; with a 1ns threshold every request qualifies.
func TestSlowRequestAlwaysKept(t *testing.T) {
	s, _ := newAdderServer(t, func(c *Config) {
		c.SlowRequest = time.Nanosecond
		c.FlightSampleN = 1 << 30 // sampling alone would effectively never keep
	})
	rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"})
	if rec.Code != http.StatusOK {
		t.Fatalf("match: status %d", rec.Code)
	}
	tls := debugFind(t, s, rec.Header().Get("X-Request-Id"))
	if len(tls) != 1 || tls[0].KeepReason != obs.KeepSlow {
		t.Fatalf("timelines %+v, want one kept as slow", tls)
	}
	met := parseMetrics(t, do(t, s, "GET", "/metrics", nil).Body.String())
	if met["subgeminid_slow_requests_total"] < 1 {
		t.Errorf("slow_requests_total = %v, want >= 1", met["subgeminid_slow_requests_total"])
	}
}

// TestRecorderConcurrentScrape: matches run concurrently with flight
// recorder list/detail reads and metric scrapes; the race detector owns
// the assertion.
func TestRecorderConcurrentScrape(t *testing.T) {
	s, _ := newAdderServer(t, func(c *Config) { c.FlightSampleN = 1 })
	const matchers, rounds = 4, 8
	var wg sync.WaitGroup
	for g := 0; g < matchers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < matchers*rounds; i++ {
			for _, tl := range debugList(t, s, "?limit=10") {
				debugFind(t, s, tl.RequestID)
			}
			do(t, s, "GET", "/metrics", nil)
		}
	}()
	wg.Wait()
}
