package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"subgemini/internal/jobs"
)

func decodeSweep(t *testing.T, body []byte) *SweepResponse {
	t.Helper()
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("invalid sweep response: %v\n%s", err, body)
	}
	return &resp
}

func TestLibraryCRUDAndRestartPersistence(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, Config{Globals: rails, DataDir: dir})

	// PUT with built-in names plus an inline netlist pattern.
	rec := do(t, s, "PUT", "/v1/libraries/std", LibraryRequest{
		Patterns: []string{"NAND2", "INV"},
		Netlist:  invPattern,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("put library: status %d: %s", rec.Code, rec.Body.String())
	}
	var info LibraryInfo
	json.Unmarshal(rec.Body.Bytes(), &info)
	want := []string{"NAND2", "INV", "MYINV"}
	if info.Name != "std" || len(info.Patterns) != 3 {
		t.Fatalf("put library returned %+v, want std with %v", info, want)
	}
	for i, p := range want {
		if info.Patterns[i] != p {
			t.Errorf("library pattern[%d] = %q, want %q", i, info.Patterns[i], p)
		}
	}

	// GET round-trips; list includes it.
	rec = do(t, s, "GET", "/v1/libraries/std", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get library: status %d", rec.Code)
	}
	rec = do(t, s, "GET", "/v1/libraries", nil)
	var list []LibraryInfo
	json.Unmarshal(rec.Body.Bytes(), &list)
	if len(list) != 1 || list[0].Name != "std" {
		t.Errorf("library list = %+v, want [std]", list)
	}

	// Error cases.
	if rec := do(t, s, "PUT", "/v1/libraries/.bad", LibraryRequest{Patterns: []string{"INV"}}); rec.Code != http.StatusBadRequest {
		t.Errorf("invalid name: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "PUT", "/v1/libraries/x", LibraryRequest{Patterns: []string{"NO_SUCH"}}); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown pattern: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "PUT", "/v1/libraries/x", LibraryRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty library: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "PUT", "/v1/libraries/x", LibraryRequest{Netlist: "MP1 y a VDD"}); rec.Code != http.StatusBadRequest {
		t.Errorf("netlist without subckt: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "GET", "/v1/libraries/ghost", nil); rec.Code != http.StatusNotFound {
		t.Errorf("missing library: status %d, want 404", rec.Code)
	}

	// A second server over the same data dir sees the library, and the
	// netlist-supplied pattern resolves (it was persisted alongside).
	s.Close(t.Context())
	s2 := mustNew(t, Config{Globals: rails, DataDir: dir})
	rec = do(t, s2, "GET", "/v1/libraries/std", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("library after restart: status %d", rec.Code)
	}
	json.Unmarshal(rec.Body.Bytes(), &info)
	if len(info.Patterns) != 3 || info.Patterns[2] != "MYINV" {
		t.Errorf("library after restart = %+v, want %v", info.Patterns, want)
	}
	if rec := do(t, s2, "PUT", "/v1/circuits/c", nandNetlist); rec.Code != http.StatusOK {
		t.Fatalf("put circuit: status %d", rec.Code)
	}
	rec = do(t, s2, "POST", "/v1/sweep", SweepRequest{Circuit: "c", Library: "std"})
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep after restart: status %d: %s", rec.Code, rec.Body.String())
	}

	// DELETE, then it is gone — also after another restart.
	if rec := do(t, s2, "DELETE", "/v1/libraries/std", nil); rec.Code != http.StatusOK {
		t.Fatalf("delete library: status %d", rec.Code)
	}
	if rec := do(t, s2, "GET", "/v1/libraries/std", nil); rec.Code != http.StatusNotFound {
		t.Errorf("get deleted: status %d, want 404", rec.Code)
	}
	if rec := do(t, s2, "DELETE", "/v1/libraries/std", nil); rec.Code != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", rec.Code)
	}
	s2.Close(t.Context())
	s3 := mustNew(t, Config{Globals: rails, DataDir: dir})
	if rec := do(t, s3, "GET", "/v1/libraries/std", nil); rec.Code != http.StatusNotFound {
		t.Errorf("deleted library resurrected after restart: status %d", rec.Code)
	}
}

func TestSweepSyncAgreesWithSequentialMatches(t *testing.T) {
	s, wantFA := newAdderServer(t, nil)
	patterns := []string{"FA", "NAND2", "INV", "XOR2"}

	rec := do(t, s, "POST", "/v1/sweep", SweepRequest{Patterns: patterns})
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeSweep(t, rec.Body.Bytes())
	if resp.Patterns != len(patterns) || resp.Runs+resp.Deduped != len(patterns) {
		t.Fatalf("sweep shape = %d patterns, %d runs + %d deduped", resp.Patterns, resp.Runs, resp.Deduped)
	}
	for i, pr := range resp.Results {
		if pr.Pattern != patterns[i] {
			t.Errorf("result[%d] = %q, want input order %q", i, pr.Pattern, patterns[i])
		}
		mrec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: pr.Pattern})
		if mrec.Code != http.StatusOK {
			t.Fatalf("match %s: status %d", pr.Pattern, mrec.Code)
		}
		if mr := decodeMatch(t, mrec); mr.Count != pr.Count {
			t.Errorf("%s: sweep found %d, sequential match found %d", pr.Pattern, pr.Count, mr.Count)
		}
	}
	if resp.Results[0].Count != wantFA {
		t.Errorf("FA count = %d, want %d", resp.Results[0].Count, wantFA)
	}

	// Duplicate names dedupe: the alias rides on the representative's run.
	rec = do(t, s, "POST", "/v1/sweep", SweepRequest{Patterns: []string{"NAND2", "NAND2"}, IncludeInstances: true})
	resp = decodeSweep(t, rec.Body.Bytes())
	if resp.Runs != 1 || resp.Deduped != 1 {
		t.Errorf("duplicate sweep: %d runs + %d deduped, want 1 + 1", resp.Runs, resp.Deduped)
	}
	if resp.Results[1].Alias != "NAND2" {
		t.Errorf("duplicate alias = %q, want NAND2", resp.Results[1].Alias)
	}
	if len(resp.Results[0].Instances) != resp.Results[0].Count {
		t.Errorf("include_instances returned %d instances for count %d",
			len(resp.Results[0].Instances), resp.Results[0].Count)
	}

	// Validation: exactly one of library/patterns.
	if rec := do(t, s, "POST", "/v1/sweep", SweepRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty sweep: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/sweep", SweepRequest{Library: "l", Patterns: []string{"INV"}}); rec.Code != http.StatusBadRequest {
		t.Errorf("library+patterns: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/sweep", SweepRequest{Library: "ghost"}); rec.Code != http.StatusNotFound {
		t.Errorf("unknown library: status %d, want 404", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/sweep", SweepRequest{Patterns: []string{"NO_SUCH"}}); rec.Code != http.StatusNotFound {
		t.Errorf("unknown pattern: status %d, want 404", rec.Code)
	}

	// Metrics: sweep counters and per-pattern aggregates are exposed.
	met := parseMetrics(t, do(t, s, "GET", "/metrics", nil).Body.String())
	if met["subgeminid_sweeps_total"] != 2 {
		t.Errorf("sweeps_total = %v, want 2", met["subgeminid_sweeps_total"])
	}
	if met["subgeminid_sweep_patterns_total"] != 6 {
		t.Errorf("sweep_patterns_total = %v, want 6", met["subgeminid_sweep_patterns_total"])
	}
	if met["subgeminid_sweep_deduped_total"] != 1 {
		t.Errorf("sweep_deduped_total = %v, want 1", met["subgeminid_sweep_deduped_total"])
	}
	if got := met[`subgeminid_sweep_pattern_runs_total{pattern="FA"}`]; got != 1 {
		t.Errorf(`per-pattern runs{FA} = %v, want 1`, got)
	}
	if got := met[`subgeminid_sweep_pattern_instances_total{pattern="FA"}`]; got != float64(wantFA) {
		t.Errorf(`per-pattern instances{FA} = %v, want %d`, got, wantFA)
	}
}

func TestSweepJobAndCancellation(t *testing.T) {
	s, wantFA := newAdderServer(t, nil)
	if rec := do(t, s, "PUT", "/v1/libraries/lib", LibraryRequest{Patterns: []string{"FA", "INV"}}); rec.Code != http.StatusOK {
		t.Fatalf("put library: status %d: %s", rec.Code, rec.Body.String())
	}

	// Async sweep against the stored library.
	view := submitJob(t, s, JobRequest{Kind: "sweep", Sweep: &SweepRequest{Library: "lib"}})
	view = waitJob(t, s, view.ID)
	if view.State != jobs.Done {
		t.Fatalf("sweep job ended %s: %s", view.State, view.Error)
	}
	resp := decodeSweep(t, view.Result)
	if resp.Library != "lib" || len(resp.Results) != 2 || resp.Results[0].Count != wantFA {
		t.Errorf("sweep job result = %+v, want lib with FA count %d", resp, wantFA)
	}

	// Submit-time validation mirrors the synchronous endpoint.
	if rec := do(t, s, "POST", "/v1/jobs", JobRequest{Kind: "sweep"}); rec.Code != http.StatusBadRequest {
		t.Errorf("missing payload: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/jobs", JobRequest{Kind: "sweep", Sweep: &SweepRequest{}}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty sweep payload: status %d, want 400", rec.Code)
	}

	// Mid-sweep cancellation: block the matcher inside a candidate check,
	// cancel the job, and the run unwinds to the cancelled state.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testCandidateHook = func() {
		once.Do(func() { close(started) })
		<-release
	}
	view = submitJob(t, s, JobRequest{Kind: "sweep", Sweep: &SweepRequest{Library: "lib"}})
	<-started
	if rec := do(t, s, "DELETE", "/v1/jobs/"+view.ID, nil); rec.Code != http.StatusOK {
		t.Fatalf("cancel sweep job: status %d: %s", rec.Code, rec.Body.String())
	}
	close(release)
	view = waitJob(t, s, view.ID)
	if view.State != jobs.Cancelled {
		t.Errorf("cancelled sweep job ended %s, want cancelled (error %q)", view.State, view.Error)
	}
}
