package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"subgemini/internal/extract"
	"subgemini/internal/jobs"
	"subgemini/internal/netlist"
	"subgemini/internal/obs"
	"subgemini/internal/stdcell"
	"subgemini/internal/store"
)

// Job kinds accepted by POST /v1/jobs.
const (
	jobKindMatch   = "match"
	jobKindBatch   = "batch"
	jobKindExtract = "extract"
	jobKindSweep   = "sweep"
	// jobKindIncSweep runs the same payload as "sweep" but lets each
	// per-pattern run replay from the versioned result cache; instances are
	// bit-identical to a full sweep, only the work differs.
	jobKindIncSweep = "incremental-sweep"
)

// JobRequest is the body of POST /v1/jobs: a kind plus exactly the payload
// for that kind.  Jobs run on the engine's worker pool, outside the HTTP
// request's deadline envelope — that is their purpose — so a match job has
// no default timeout; set "timeout_ms" explicitly to bound one.
type JobRequest struct {
	Kind    string          `json:"kind"`
	Match   *MatchRequest   `json:"match,omitempty"`
	Batch   *BatchRequest   `json:"batch,omitempty"`
	Extract *ExtractRequest `json:"extract,omitempty"`
	Sweep   *SweepRequest   `json:"sweep,omitempty"`
}

// ExtractRequest asks for cell extraction (transistors → gates) against a
// stored circuit.  The stored circuit itself is never modified: extraction
// runs on a private clone.  "cells" names built-in library cells (empty
// plus no "netlist" means the whole built-in library); "netlist" supplies
// a user pattern library as .SUBCKT source.  "store_as" saves the
// extracted gate-level result as a new stored circuit.
type ExtractRequest struct {
	Circuit        string   `json:"circuit,omitempty"`
	Cells          []string `json:"cells,omitempty"`
	Netlist        string   `json:"netlist,omitempty"`
	Globals        []string `json:"globals,omitempty"`
	Prefix         string   `json:"prefix,omitempty"`
	StoreAs        string   `json:"store_as,omitempty"`
	IncludeNetlist bool     `json:"include_netlist,omitempty"`
	TimeoutMS      int      `json:"timeout_ms,omitempty"`
}

// ExtractionJSON is one cell's extraction count.
type ExtractionJSON struct {
	Cell  string `json:"cell"`
	Count int    `json:"count"`
}

// ExtractResponse is the result payload of a finished extract job.
type ExtractResponse struct {
	Circuit     string           `json:"circuit"`
	Extractions []ExtractionJSON `json:"extractions"`
	Devices     int              `json:"devices"`
	Nets        int              `json:"nets"`
	StoredAs    string           `json:"stored_as,omitempty"`
	Netlist     string           `json:"netlist,omitempty"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.shedBulk(w, r, "jobs") {
		return
	}
	var req JobRequest
	if e := decodeBody(r, &req); e != nil {
		writeError(w, e)
		return
	}
	runner, e := s.jobRunner(&req)
	if e != nil {
		writeError(w, e)
		return
	}
	// Re-marshal the decoded request so the job record stores exactly what
	// the engine will run (defaults resolved, unknown fields dropped).
	raw, err := json.Marshal(&req)
	if err != nil {
		writeError(w, errf(http.StatusInternalServerError, "encoding job request: %v", err))
		return
	}
	// The job inherits the submitting request's telemetry ID: the async run
	// gets its own timeline in the flight recorder, findable by the same ID
	// this response's X-Request-Id header carries.
	rid := obs.RequestID(r.Context())
	view, err := s.jobs.SubmitWithRequestID(req.Kind, rid, raw, s.observeJobRunner(req.Kind, rid, runner))
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, view)
	case errors.Is(err, jobs.ErrQueueFull):
		writeError(w, errf(http.StatusServiceUnavailable, "job queue full; retry later or raise -job-queue"))
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, errf(http.StatusServiceUnavailable, "daemon shutting down"))
	default:
		writeError(w, errf(http.StatusInternalServerError, "submitting job: %v", err))
	}
}

// jobRunner validates a job request and builds the closure the engine will
// run.  Validation happens here, synchronously, so malformed jobs are
// rejected at submit time with a 400 instead of surfacing later as a
// failed job.
func (s *Server) jobRunner(req *JobRequest) (jobs.Runner, *httpError) {
	switch req.Kind {
	case jobKindMatch:
		if req.Match == nil {
			return nil, errf(http.StatusBadRequest, `job kind "match" needs a "match" payload`)
		}
		if e := validateMatch(req.Match); e != nil {
			return nil, e
		}
		mr := req.Match
		return func(ctx context.Context) (any, error) {
			return s.runMatchJob(ctx, mr)
		}, nil
	case jobKindBatch:
		if req.Batch == nil || len(req.Batch.Requests) == 0 {
			return nil, errf(http.StatusBadRequest, `job kind "batch" needs a "batch" payload with "requests"`)
		}
		for i := range req.Batch.Requests {
			if e := validateMatch(&req.Batch.Requests[i]); e != nil {
				return nil, errf(http.StatusBadRequest, "batch item %d: %s", i, e.msg)
			}
		}
		br := req.Batch
		br.fillCircuits()
		return func(ctx context.Context) (any, error) {
			return s.runBatchJob(ctx, br), nil
		}, nil
	case jobKindExtract:
		if req.Extract == nil {
			return nil, errf(http.StatusBadRequest, `job kind "extract" needs an "extract" payload`)
		}
		if req.Extract.StoreAs != "" && !store.ValidName(req.Extract.StoreAs) {
			return nil, errf(http.StatusBadRequest, "invalid store_as name %q", req.Extract.StoreAs)
		}
		er := req.Extract
		return func(ctx context.Context) (any, error) {
			return s.runExtractJob(ctx, er)
		}, nil
	case jobKindSweep, jobKindIncSweep:
		if req.Sweep == nil {
			return nil, errf(http.StatusBadRequest, `job kind %q needs a "sweep" payload`, req.Kind)
		}
		if e := validateSweep(req.Sweep); e != nil {
			return nil, e
		}
		incremental := req.Kind == jobKindIncSweep
		if incremental && !s.incEnabled() {
			return nil, errf(http.StatusBadRequest,
				`job kind "incremental-sweep" is unavailable: the daemon runs with incremental matching disabled (-noincremental)`)
		}
		sr := req.Sweep
		return func(ctx context.Context) (any, error) {
			return s.runSweepJob(ctx, sr, incremental)
		}, nil
	default:
		return nil, errf(http.StatusBadRequest,
			`unknown job kind %q (want "match", "batch", "extract", "sweep", or "incremental-sweep")`, req.Kind)
	}
}

// runMatchJob is the asynchronous twin of runMatch: no admission
// semaphore (the worker pool is the concurrency bound) and no default
// deadline (escaping the request timeout envelope is the point of a job);
// an explicit timeout_ms is honored uncapped.
func (s *Server) runMatchJob(ctx context.Context, req *MatchRequest) (*MatchResponse, error) {
	pat, cacheHit, e := s.resolvePattern(req)
	if e != nil {
		return nil, errors.New(e.msg)
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	h, e := s.acquireCircuit(req.Circuit)
	if e != nil {
		return nil, errors.New(e.msg)
	}
	defer h.Release()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	resp, err := s.executeMatch(ctx, req, pat, h)
	if err != nil {
		return nil, err
	}
	resp.CacheHit = cacheHit
	return resp, nil
}

// runBatchJob runs a batch sequentially on the job worker; per-item
// failures are recorded in-band, so the job itself only fails on
// cancellation.
func (s *Server) runBatchJob(ctx context.Context, req *BatchRequest) BatchResponse {
	results := make([]BatchItem, len(req.Requests))
	for i := range req.Requests {
		item := BatchItem{Index: i, Pattern: req.Requests[i].Pattern}
		resp, err := s.runMatchJob(ctx, &req.Requests[i])
		if err != nil {
			item.Status = http.StatusBadRequest
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				item.Status = http.StatusServiceUnavailable
			}
			item.Error = err.Error()
		} else {
			item.Status, item.Match, item.Pattern = http.StatusOK, resp, resp.Pattern
		}
		results[i] = item
	}
	return BatchResponse{Results: results}
}

// runExtractJob clones the selected circuit under its read lock and
// extracts the requested cells from the clone, largest first.  The stored
// original is untouched; store_as saves the gate-level result as a new
// circuit.
func (s *Server) runExtractJob(ctx context.Context, req *ExtractRequest) (*ExtractResponse, error) {
	specs, err := s.extractSpecs(req)
	if err != nil {
		return nil, err
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	h, e := s.acquireCircuit(req.Circuit)
	if e != nil {
		return nil, errors.New(e.msg)
	}
	defer h.Release()

	// Extraction mutates its circuit in place, so it must run on a private
	// clone; the read lock covers the clone against a concurrent global
	// re-mark on the shared entry.
	h.RLock()
	ckt := h.Circuit().Clone()
	h.RUnlock()

	globals := append([]string(nil), h.Globals()...)
	globals = append(globals, req.Globals...)
	exts, err := extract.Specs(ckt, specs, extract.Options{
		Globals: globals,
		Prefix:  req.Prefix,
		Cancel:  ctx.Err,
	})
	if err != nil {
		return nil, err
	}

	resp := &ExtractResponse{
		Circuit:     h.Name(),
		Extractions: make([]ExtractionJSON, 0, len(exts)),
		Devices:     ckt.NumDevices(),
		Nets:        ckt.NumNets(),
	}
	for _, x := range exts {
		resp.Extractions = append(resp.Extractions, ExtractionJSON{Cell: x.Cell, Count: x.Count})
	}
	if req.StoreAs != "" {
		if _, err := s.store.Put(req.StoreAs, ckt); err != nil {
			return nil, fmt.Errorf("storing extracted circuit as %q: %w", req.StoreAs, err)
		}
		resp.StoredAs = req.StoreAs
	}
	if req.IncludeNetlist {
		var buf strings.Builder
		if err := netlist.WriteCircuit(&buf, ckt); err != nil {
			return nil, fmt.Errorf("rendering extracted netlist: %w", err)
		}
		resp.Netlist = buf.String()
	}
	return resp, nil
}

// extractSpecs resolves an extract request's pattern selection into specs.
func (s *Server) extractSpecs(req *ExtractRequest) ([]extract.Spec, error) {
	var specs []extract.Spec
	if req.Netlist != "" {
		f, err := netlist.ParseString(req.Netlist, "patterns")
		if err != nil {
			return nil, fmt.Errorf("pattern netlist: %w", err)
		}
		specs, err = extract.SpecsFromNetlist(f)
		if err != nil {
			return nil, fmt.Errorf("pattern netlist: %w", err)
		}
	}
	switch {
	case len(req.Cells) > 0:
		for _, name := range req.Cells {
			if stdcell.Get(name) == nil {
				return nil, fmt.Errorf("no built-in cell named %q", name)
			}
			specs = append(specs, s.cachedSpec(name))
		}
	case req.Netlist == "":
		for _, def := range stdcell.All() {
			specs = append(specs, s.cachedSpec(def.Name))
		}
	}
	return specs, nil
}

// cachedSpec builds an extraction spec for a built-in cell through the
// compiled-pattern cache, so repeated extract jobs reuse one compiled
// template (and its hit shows up in the cache counters) instead of
// rebuilding the cell's pattern per job.  Port order is read from the
// clone: pattern construction adds ports first, so index order is
// declaration order.
func (s *Server) cachedSpec(name string) extract.Spec {
	pat, _, err := s.cache.resolve(name, true)
	if err != nil {
		// The caller verified the cell exists; a race with cache eviction
		// still recompiles rather than fails.
		return extract.SpecFromCell(stdcell.Get(name))
	}
	ports := pat.Ports()
	names := make([]string, len(ports))
	for i, p := range ports {
		names[i] = p.Name
	}
	return extract.Spec{Name: name, Ports: names, Pattern: pat}
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errf(http.StatusNotFound, "no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.jobs.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, view)
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, errf(http.StatusNotFound, "no job %q", r.PathValue("id")))
	case errors.Is(err, jobs.ErrFinished):
		writeError(w, errf(http.StatusConflict, "job %q already finished", r.PathValue("id")))
	default:
		writeError(w, errf(http.StatusInternalServerError, "cancelling job: %v", err))
	}
}
