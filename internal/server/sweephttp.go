package server

// HTTP surface of the library-sweep engine: named pattern libraries
// (PUT/GET/DELETE /v1/libraries/{name}, GET /v1/libraries) persisted by
// the store alongside patterns, plus POST /v1/sweep and the "sweep" job
// kind, both of which run internal/sweep against a stored circuit.

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"time"

	"subgemini/internal/core"
	"subgemini/internal/netlist"
	"subgemini/internal/obs"
	"subgemini/internal/stats"
	"subgemini/internal/stdcell"
	"subgemini/internal/store"
	"subgemini/internal/sweep"
)

// LibraryRequest is the body of PUT /v1/libraries/{name}.  "patterns"
// names built-in cells or previously uploaded patterns; "netlist" supplies
// additional patterns as .SUBCKT source, which are compiled into the
// pattern cache, persisted, and appended to the list (sorted by name).
type LibraryRequest struct {
	Patterns []string `json:"patterns,omitempty"`
	Netlist  string   `json:"netlist,omitempty"`
}

// LibraryInfo describes one stored library.
type LibraryInfo struct {
	Name     string   `json:"name"`
	Patterns []string `json:"patterns"`
}

// SweepRequest is the body of POST /v1/sweep and of the "sweep" job kind.
// Exactly one of "library" (a stored library name) and "patterns" (an
// inline list of pattern names) selects what to sweep.
type SweepRequest struct {
	Circuit          string   `json:"circuit,omitempty"`
	Library          string   `json:"library,omitempty"`
	Patterns         []string `json:"patterns,omitempty"`
	Globals          []string `json:"globals,omitempty"`
	Workers          int      `json:"workers,omitempty"`
	Max              int      `json:"max,omitempty"`
	IncludeInstances bool     `json:"include_instances,omitempty"`
	TimeoutMS        int      `json:"timeout_ms,omitempty"`

	// SinceVersion floors the incremental replay base, exactly as on a
	// match request (also settable via ?since_version=).
	SinceVersion uint64 `json:"since_version,omitempty"`
}

// SweepPatternJSON is one pattern's share of a sweep response.
type SweepPatternJSON struct {
	Pattern   string         `json:"pattern"`
	Alias     string         `json:"alias,omitempty"`
	Count     int            `json:"count"`
	Stats     StatsJSON      `json:"stats"`
	Instances []InstanceJSON `json:"instances,omitempty"`
}

// SweepResponse is the merged result of one sweep.
type SweepResponse struct {
	Circuit        string             `json:"circuit"`
	Library        string             `json:"library,omitempty"`
	Patterns       int                `json:"patterns"`
	Runs           int                `json:"runs"`
	Deduped        int                `json:"deduped"`
	Count          int                `json:"count"`
	Results        []SweepPatternJSON `json:"results"`
	DurationMicros int64              `json:"duration_us"`

	// Version is the circuit's edit version; Replayed / Recomputed total
	// the Phase II candidate outcomes answered from the result cache vs
	// verified fresh across the sweep (zero on full sweeps).
	Version    uint64 `json:"version,omitempty"`
	Replayed   int    `json:"replayed,omitempty"`
	Recomputed int    `json:"recomputed,omitempty"`
}

func (s *Server) handleLibraryPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !store.ValidName(name) {
		writeError(w, errf(http.StatusBadRequest,
			"invalid library name %q (want 1-64 chars of [A-Za-z0-9._-], not starting with '.' or '-')", name))
		return
	}
	var req LibraryRequest
	if e := decodeBody(r, &req); e != nil {
		writeError(w, e)
		return
	}
	patterns := append([]string(nil), req.Patterns...)
	if req.Netlist != "" {
		f, err := netlist.ParseString(req.Netlist, "library")
		if err != nil {
			writeError(w, errf(http.StatusBadRequest, "library netlist: %v", err))
			return
		}
		if len(f.Subckts) == 0 {
			writeError(w, errf(http.StatusBadRequest, "library netlist defines no .SUBCKT"))
			return
		}
		subckts := make([]string, 0, len(f.Subckts))
		for sub := range f.Subckts {
			subckts = append(subckts, sub)
		}
		sort.Strings(subckts)
		for _, sub := range subckts {
			tpl, err := f.Pattern(sub)
			if err != nil {
				writeError(w, errf(http.StatusBadRequest, "library netlist: pattern %s: %v", sub, err))
				return
			}
			s.cache.put(sub, tpl, false)
			if err := s.store.SavePattern(sub, tpl); err != nil {
				s.log.Warn("persisting pattern failed", "pattern", sub, "err", err)
			}
			patterns = append(patterns, sub)
		}
	}
	if len(patterns) == 0 {
		writeError(w, errf(http.StatusBadRequest, `library needs "patterns" names or a "netlist" with .SUBCKT definitions`))
		return
	}
	for _, p := range patterns {
		if !s.patternKnown(p) {
			writeError(w, errf(http.StatusBadRequest,
				"library references unknown pattern %q (built-in cells and uploaded patterns; see /v1/cells)", p))
			return
		}
	}
	if err := s.store.SaveLibrary(name, patterns); err != nil {
		writeError(w, errf(http.StatusInternalServerError, "saving library %q: %v", name, err))
		return
	}
	writeJSON(w, http.StatusOK, LibraryInfo{Name: name, Patterns: patterns})
}

// patternKnown reports whether a pattern name resolves without compiling
// anything: cache entry, built-in cell, or store-persisted template.
func (s *Server) patternKnown(name string) bool {
	if _, ok := s.cache.template(name); ok {
		return true
	}
	if stdcell.Get(name) != nil {
		return true
	}
	_, ok := s.store.Patterns()[name]
	return ok
}

func (s *Server) handleLibraryGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	pats, ok := s.store.Library(name)
	if !ok {
		writeError(w, errf(http.StatusNotFound, "no library named %q; see GET /v1/libraries", name))
		return
	}
	writeJSON(w, http.StatusOK, LibraryInfo{Name: name, Patterns: pats})
}

func (s *Server) handleLibraryDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.store.DeleteLibrary(name); err != nil {
		if errors.Is(err, store.ErrNotFound) {
			writeError(w, errf(http.StatusNotFound, "no library named %q", name))
			return
		}
		writeError(w, errf(http.StatusInternalServerError, "deleting library %q: %v", name, err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleLibraryList(w http.ResponseWriter, r *http.Request) {
	libs := s.store.Libraries()
	out := make([]LibraryInfo, 0, len(libs))
	for name, pats := range libs {
		out = append(out, LibraryInfo{Name: name, Patterns: pats})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.shedBulk(w, r, "sweep") {
		return
	}
	var req SweepRequest
	if e := decodeBody(r, &req); e != nil {
		writeError(w, e)
		return
	}
	if req.SinceVersion == 0 {
		req.SinceVersion = sinceVersion(r)
	}
	resp, e := s.runSweep(r.Context(), &req)
	if e != nil {
		writeError(w, e)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func validateSweep(req *SweepRequest) *httpError {
	if (req.Library == "") == (len(req.Patterns) == 0) {
		return errf(http.StatusBadRequest, `sweep needs exactly one of "library" (a stored library name) or "patterns" (pattern names)`)
	}
	return nil
}

// resolveSweepLibrary turns the request's selection into named pattern
// clones, ready to hand to sweep.Run.
func (s *Server) resolveSweepLibrary(req *SweepRequest) ([]sweep.Pattern, *httpError) {
	names := req.Patterns
	if req.Library != "" {
		stored, ok := s.store.Library(req.Library)
		if !ok {
			return nil, errf(http.StatusNotFound, "no library named %q; see GET /v1/libraries", req.Library)
		}
		names = stored
	}
	lib := make([]sweep.Pattern, 0, len(names))
	for _, name := range names {
		pat, _, err := s.cache.resolve(name, true)
		if err != nil {
			return nil, errf(http.StatusNotFound, "%v", err)
		}
		lib = append(lib, sweep.Pattern{Name: name, Template: pat})
	}
	return lib, nil
}

// runSweep executes one synchronous sweep end to end, mirroring runMatch:
// validation, library resolution, deadline, admission (a sweep takes one
// match slot; its internal parallelism is bounded separately by "workers"),
// circuit acquisition, and the sweep under the entry read lock.
func (s *Server) runSweep(ctx context.Context, req *SweepRequest) (*SweepResponse, *httpError) {
	if e := validateSweep(req); e != nil {
		return nil, e
	}
	sc := obs.ScopeFromContext(ctx)
	ref := sc.Begin(obs.KindCacheLookup, "sweep-library")
	lib, e := s.resolveSweepLibrary(req)
	sc.AttrInt(ref, "patterns", int64(len(lib)))
	sc.End(ref)
	if e != nil {
		return nil, e
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	qRef := sc.Begin(obs.KindQueueWait, "match-slot")
	select {
	case s.sem <- struct{}{}:
		sc.End(qRef)
		defer func() { <-s.sem }()
	case <-ctx.Done():
		sc.End(qRef)
		obs.FromContext(ctx).SetCancelled()
		s.met.rejected.Add(1)
		return nil, errf(http.StatusServiceUnavailable,
			"server saturated: no match slot within %v (%d concurrent)", timeout, s.cfg.MaxConcurrent)
	}
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	gRef := sc.Begin(obs.KindStoreGet, req.Circuit)
	h, e := s.acquireCircuit(req.Circuit)
	sc.End(gRef)
	if e != nil {
		return nil, e
	}
	defer h.Release()
	resp, err := s.executeSweep(ctx, req, lib, h, s.incEnabled())
	if err != nil {
		return nil, s.matchError(ctx, err, timeout)
	}
	return resp, nil
}

// executeSweep runs the sweep against an acquired circuit handle: global
// pre-marking under the entry lock, then sweep.Run sharing the entry's CSR
// view and scratch pool.  Both the synchronous path and the job runners
// land here; incremental selects whether per-pattern runs consult the
// versioned result cache (results are identical either way).
func (s *Server) executeSweep(ctx context.Context, req *SweepRequest, lib []sweep.Pattern, h *store.Handle, incremental bool) (*SweepResponse, error) {
	// Every global the sweep would mark on the shared circuit must be
	// pre-marked under the entry write lock: request globals plus each
	// pattern's declared globals (the circuit's own are already marked).
	names := append([]string(nil), req.Globals...)
	for _, p := range lib {
		for _, n := range p.Template.Globals() {
			names = append(names, n.Name)
		}
	}

	workers := req.Workers
	if workers > s.cfg.MaxWorkers {
		workers = s.cfg.MaxWorkers
	}
	p1w := s.cfg.Phase1Workers
	if p1w > s.cfg.MaxWorkers {
		p1w = s.cfg.MaxWorkers
	}

	sopts := sweep.Options{
		Globals:       names,
		Workers:       workers,
		Phase1Workers: p1w,
		MaxInstances:  req.Max,
		Cancel:        s.cancelHook(ctx),
		CSR:           h.CSR(),
		Scratch:       h.Scratch(),
		Observe:       obs.ScopeFromContext(ctx),
	}
	if incremental {
		sopts.Incremental = &sweepIncHook{s: s, h: h, minBase: req.SinceVersion}
	}
	h.RLockWithGlobals(names)
	rep, err := sweep.Run(h.Circuit(), lib, sopts)
	h.RUnlock()
	if err != nil {
		return nil, err
	}
	s.met.observeSweep(rep)

	resp := &SweepResponse{
		Circuit:        h.Name(),
		Library:        req.Library,
		Patterns:       len(rep.Results),
		Runs:           rep.Runs,
		Deduped:        rep.Deduped,
		Count:          rep.Instances(),
		Results:        make([]SweepPatternJSON, 0, len(rep.Results)),
		DurationMicros: rep.Duration.Microseconds(),
		Version:        h.Version(),
		Replayed:       rep.Replayed,
		Recomputed:     rep.Recomputed,
	}
	for i := range rep.Results {
		pr := &rep.Results[i]
		jp := SweepPatternJSON{
			Pattern: pr.Name,
			Alias:   pr.Alias,
			Count:   len(pr.Instances),
			Stats:   statsJSON(&pr.Report),
		}
		if req.IncludeInstances {
			jp.Instances = instancesJSON(pr.Instances)
		}
		resp.Results = append(resp.Results, jp)
	}
	return resp, nil
}

// statsJSON converts a matcher report to its wire form.
func statsJSON(r *stats.Report) StatsJSON {
	return StatsJSON{
		Instances:      r.Instances,
		MatchedDevices: r.MatchedDevices,
		CVSize:         r.CVSize,
		KeyVertex:      r.KeyVertex,
		Candidates:     r.Candidates,
		Phase1Passes:   r.Phase1Passes,
		Phase2Passes:   r.Phase2Passes,
		Guesses:        r.Guesses,
		Backtracks:     r.Backtracks,
		Phase1Micros:   r.Phase1Duration.Microseconds(),
		Phase2Micros:   r.Phase2Duration.Microseconds(),
		RegionRadius:   r.RegionRadius,
		RegionMaxSize:  r.RegionMaxSize,
		RegionVertices: r.RegionBallSum,

		IncrementalMode: r.IncrementalMode,
		Replayed:        r.Replayed,
		Recomputed:      r.Recomputed,
	}
}

// instancesJSON converts instances to their wire form (pattern names to
// main-graph names).
func instancesJSON(insts []*core.Instance) []InstanceJSON {
	out := make([]InstanceJSON, 0, len(insts))
	for _, inst := range insts {
		ji := InstanceJSON{Devices: make(map[string]string), Nets: make(map[string]string)}
		for sd, gd := range inst.DevMap {
			ji.Devices[sd.Name] = gd.Name
		}
		for sn, gn := range inst.NetMap {
			ji.Nets[sn.Name] = gn.Name
		}
		out = append(out, ji)
	}
	return out
}

// runSweepJob is the asynchronous twin of runSweep: no admission semaphore
// (the job worker pool is the concurrency bound) and no default deadline;
// an explicit timeout_ms is honored uncapped.  The library is re-resolved
// at run time, so a job submitted against a stored library sweeps its
// definition as of execution.  incremental distinguishes the "sweep" job
// kind (always full) from "incremental-sweep" (consults the result cache).
func (s *Server) runSweepJob(ctx context.Context, req *SweepRequest, incremental bool) (*SweepResponse, error) {
	lib, e := s.resolveSweepLibrary(req)
	if e != nil {
		return nil, errors.New(e.msg)
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	h, e := s.acquireCircuit(req.Circuit)
	if e != nil {
		return nil, errors.New(e.msg)
	}
	defer h.Release()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	return s.executeSweep(ctx, req, lib, h, incremental && s.incEnabled())
}
