package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"subgemini/internal/gen"
	"subgemini/internal/stdcell"
)

// rails are the special signals every generated workload uses.
var rails = []string{"VDD", "GND"}

// nandNetlist is a tiny main circuit: one NAND2 feeding one INV.
const nandNetlist = `
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
MP3 z y VDD pmos
MN3 z y GND nmos
.END
`

// invPattern is an inline pattern source for upload-by-use tests.
const invPattern = `
.GLOBAL VDD GND
.SUBCKT MYINV A Y
MP1 Y A VDD pmos
MN1 Y A GND nmos
.ENDS
`

// mustNew builds a server, failing the test on a boot error and closing
// the server (draining its job workers) when the test ends.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s
}

func newAdderServer(t *testing.T, mut func(*Config)) (*Server, int) {
	t.Helper()
	d := gen.RippleAdder(8)
	cfg := Config{Circuit: d.C, Globals: rails}
	if mut != nil {
		mut(&cfg)
	}
	return mustNew(t, cfg), d.Expected(stdcell.FA)
}

// do issues one request against the server.  A string body is sent raw; any
// other non-nil body is marshalled as JSON.
func do(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	switch b := body.(type) {
	case nil:
		rd = strings.NewReader("")
	case string:
		rd = strings.NewReader(b)
	default:
		js, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(js))
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeMatch(t *testing.T, rec *httptest.ResponseRecorder) *MatchResponse {
	t.Helper()
	var resp MatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("invalid match response: %v\n%s", err, rec.Body.String())
	}
	return &resp
}

func parseMetrics(t *testing.T, body string) map[string]float64 {
	t.Helper()
	m := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		name, val, ok := strings.Cut(sc.Text(), " ")
		if !ok {
			t.Fatalf("metrics line %q is not name value", sc.Text())
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", sc.Text(), err)
		}
		m[name] = f
	}
	return m
}

func TestMatchBuiltinCellAndCacheHit(t *testing.T) {
	s, want := newAdderServer(t, nil)
	rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeMatch(t, rec)
	if resp.Count != want {
		t.Errorf("found %d FA instances, want %d", resp.Count, want)
	}
	if resp.CacheHit {
		t.Error("first use of FA reported a cache hit")
	}
	if resp.Stats.CVSize == 0 || resp.Stats.Phase1Passes == 0 {
		t.Errorf("stats not populated: %+v", resp.Stats)
	}
	if len(resp.Instances) != want || len(resp.Instances[0].Devices) == 0 {
		t.Errorf("instance mappings missing: %d instances", len(resp.Instances))
	}

	rec = do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"})
	if rec.Code != http.StatusOK {
		t.Fatalf("second match: status %d", rec.Code)
	}
	if resp := decodeMatch(t, rec); !resp.CacheHit {
		t.Error("second use of FA was not a cache hit")
	}
}

func TestMatchParallelWorkersAgreesWithSequential(t *testing.T) {
	s, want := newAdderServer(t, nil)
	rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA", Workers: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeMatch(t, rec); resp.Count != want {
		t.Errorf("parallel found %d, want %d", resp.Count, want)
	}
}

func TestMatchValidation(t *testing.T) {
	s, _ := newAdderServer(t, nil)
	cases := []struct {
		req  MatchRequest
		code int
	}{
		{MatchRequest{}, http.StatusBadRequest},              // no pattern
		{MatchRequest{Pattern: "NOPE"}, http.StatusNotFound}, // unknown
		{MatchRequest{Pattern: "FA", Workers: 2, NonOverlap: true}, http.StatusBadRequest},
		{MatchRequest{Pattern: "FA", Workers: 2, Max: 3}, http.StatusBadRequest},
		{MatchRequest{Netlist: "garbage\n"}, http.StatusBadRequest}, // bad inline pattern
	}
	for _, c := range cases {
		if rec := do(t, s, "POST", "/v1/match", c.req); rec.Code != c.code {
			t.Errorf("%+v: status %d, want %d (%s)", c.req, rec.Code, c.code, rec.Body.String())
		}
	}
	if rec := do(t, s, "POST", "/v1/match", "{not json"); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", rec.Code)
	}
}

func TestBatch(t *testing.T) {
	s, want := newAdderServer(t, nil)
	rec := do(t, s, "POST", "/v1/match/batch", BatchRequest{Requests: []MatchRequest{
		{Pattern: "FA"},
		{Pattern: "FA", Workers: 2},
		{Pattern: "NOPE"},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	for _, i := range []int{0, 1} {
		r := resp.Results[i]
		if r.Status != http.StatusOK || r.Match == nil || r.Match.Count != want {
			t.Errorf("item %d: status=%d match=%+v, want %d instances", i, r.Status, r.Match, want)
		}
	}
	if r := resp.Results[2]; r.Status != http.StatusNotFound || r.Error == "" {
		t.Errorf("item 2: status=%d error=%q, want 404", r.Status, r.Error)
	}

	if rec := do(t, s, "POST", "/v1/match/batch", BatchRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", rec.Code)
	}
}

// TestTimeoutReturns504AndDaemonStaysHealthy: a request that exceeds its
// deadline is answered 504, counted in the metrics, and does not poison
// later requests.
func TestTimeoutReturns504AndDaemonStaysHealthy(t *testing.T) {
	s, want := newAdderServer(t, nil)
	// Every cancellation poll (one per Phase II candidate) takes 5ms, so a
	// 1ms deadline expires deterministically on the first candidate.
	s.testCandidateHook = func() { time.Sleep(5 * time.Millisecond) }

	rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA", TimeoutMS: 1})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}

	// The daemon keeps serving: same match with a generous deadline.
	rec = do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA", TimeoutMS: 10_000})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-timeout match: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeMatch(t, rec); resp.Count != want {
		t.Errorf("post-timeout match found %d, want %d", resp.Count, want)
	}

	met := parseMetrics(t, do(t, s, "GET", "/metrics", nil).Body.String())
	if met["subgeminid_requests_timeouts_total"] != 1 {
		t.Errorf("timeouts_total = %v, want 1", met["subgeminid_requests_timeouts_total"])
	}
}

// TestAdmissionControl: with one match slot occupied, a second request is
// turned away with 503 once its deadline expires, and the slot holder
// still completes.
func TestAdmissionControl(t *testing.T) {
	s, want := newAdderServer(t, func(c *Config) { c.MaxConcurrent = 1 })
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testCandidateHook = func() {
		once.Do(func() { close(started) })
		<-release
	}

	type result struct {
		code int
		body string
	}
	first := make(chan result, 1)
	go func() {
		rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"})
		first <- result{rec.Code, rec.Body.String()}
	}()
	<-started

	rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "INV", TimeoutMS: 50})
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("saturated request: status %d, want 503: %s", rec.Code, rec.Body.String())
	}

	close(release)
	if r := <-first; r.code != http.StatusOK {
		t.Fatalf("slot holder: status %d: %s", r.code, r.body)
	}
	if resp := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"}); resp.Code != http.StatusOK {
		t.Errorf("post-saturation match: status %d", resp.Code)
	} else if decodeMatch(t, resp).Count != want {
		t.Errorf("post-saturation count wrong")
	}
	met := parseMetrics(t, do(t, s, "GET", "/metrics", nil).Body.String())
	if met["subgeminid_requests_rejected_total"] != 1 {
		t.Errorf("rejected_total = %v, want 1", met["subgeminid_requests_rejected_total"])
	}
}

func TestCircuitUploadAndInlinePattern(t *testing.T) {
	s := mustNew(t, Config{Globals: rails})

	// No circuit yet: matching is a 409.
	if rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "NAND2"}); rec.Code != http.StatusConflict {
		t.Fatalf("no-circuit match: status %d, want 409", rec.Code)
	}
	if rec := do(t, s, "GET", "/v1/circuit", nil); rec.Code != http.StatusNotFound {
		t.Errorf("no-circuit info: status %d, want 404", rec.Code)
	}

	// Upload the circuit, then match a built-in cell against it.
	rec := do(t, s, "POST", "/v1/circuit?name=chip", nandNetlist)
	if rec.Code != http.StatusOK {
		t.Fatalf("upload: status %d: %s", rec.Code, rec.Body.String())
	}
	var info CircuitInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "chip" || info.Devices != 6 {
		t.Errorf("upload info = %+v, want chip with 6 devices", info)
	}
	rec = do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "NAND2"})
	if rec.Code != http.StatusOK {
		t.Fatalf("match after upload: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeMatch(t, rec); resp.Count != 1 {
		t.Errorf("NAND2 count = %d, want 1", resp.Count)
	}

	// Inline pattern: compiled, matched, and cached under its name.
	rec = do(t, s, "POST", "/v1/match", MatchRequest{Netlist: invPattern})
	if rec.Code != http.StatusOK {
		t.Fatalf("inline pattern: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeMatch(t, rec); resp.Pattern != "MYINV" || resp.Count != 1 {
		t.Errorf("inline pattern matched %q ×%d, want MYINV ×1", resp.Pattern, resp.Count)
	}
	rec = do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "MYINV"})
	if rec.Code != http.StatusOK || !decodeMatch(t, rec).CacheHit {
		t.Errorf("cached inline pattern: status %d, want 200 with a cache hit", rec.Code)
	}

	// The cells listing shows both the built-ins and the upload.
	rec = do(t, s, "GET", "/v1/cells", nil)
	var cells []cellInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &cells); err != nil {
		t.Fatal(err)
	}
	found := map[string]string{}
	for _, c := range cells {
		found[c.Name] = c.Source
	}
	if found["NAND2"] != sourceBuiltin || found["MYINV"] != sourceUploaded {
		t.Errorf("cells listing wrong: %v", found)
	}
}

func TestCircuitUploadErrors(t *testing.T) {
	s, _ := newAdderServer(t, func(c *Config) { c.MaxBodyBytes = 256 })
	cases := []struct {
		body string
		code int
	}{
		{"this is not\na netlist\n", http.StatusBadRequest},
		{".SUBCKT A x\nMN1 x x GND nmos\n.ENDS\n", http.StatusBadRequest}, // no top-level cards
		{strings.Repeat("* padding comment line\n", 100), http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		if rec := do(t, s, "POST", "/v1/circuit", c.body); rec.Code != c.code {
			t.Errorf("upload %q...: status %d, want %d (%s)", c.body[:12], rec.Code, c.code, rec.Body.String())
		}
	}
	// The resident circuit survived every failed upload.
	if rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"}); rec.Code != http.StatusOK {
		t.Errorf("match after failed uploads: status %d", rec.Code)
	}
}

func TestMetricsAccounting(t *testing.T) {
	s, want := newAdderServer(t, nil)
	for i := 0; i < 2; i++ {
		if rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"}); rec.Code != http.StatusOK {
			t.Fatalf("match %d: status %d", i, rec.Code)
		}
	}
	met := parseMetrics(t, do(t, s, "GET", "/metrics", nil).Body.String())
	checks := map[string]float64{
		"subgeminid_match_runs_total":           2,
		"subgeminid_match_instances_total":      float64(2 * want),
		"subgeminid_pattern_cache_hits_total":   1,
		"subgeminid_pattern_cache_misses_total": 1,
		"subgeminid_pattern_cache_hit_rate":     0.5,
		"subgeminid_matches_inflight":           0,
		"subgeminid_requests_errors_total":      0,
	}
	for name, want := range checks {
		if got, ok := met[name]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	if met["subgeminid_requests_total"] < 3 {
		t.Errorf("requests_total = %v, want >= 3", met["subgeminid_requests_total"])
	}
	if met["subgeminid_match_phase1_passes_total"] <= 0 || met["subgeminid_match_candidates_total"] <= 0 {
		t.Errorf("phase counters not aggregated: %v", met)
	}
	if met["subgeminid_circuit_devices"] <= 0 {
		t.Errorf("circuit gauge missing: %v", met)
	}
}

func TestPreloadBuiltins(t *testing.T) {
	s, _ := newAdderServer(t, func(c *Config) { c.PreloadBuiltins = true })
	rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !decodeMatch(t, rec).CacheHit {
		t.Error("preloaded cell was not a cache hit on first use")
	}
	c := s.cache.counters()
	if c.hits != 1 || c.misses != 0 {
		t.Errorf("hits=%d misses=%d after preload, want 1/0", c.hits, c.misses)
	}
	if c.size < 20 {
		t.Errorf("cache size %d after preload, want the whole library", c.size)
	}
}

func TestPanicRecovery(t *testing.T) {
	var logged []string
	s, want := newAdderServer(t, func(c *Config) {
		c.Logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	})
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) { panic("boom") })
	if rec := do(t, s, "GET", "/boom", nil); rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	if len(logged) == 0 || !strings.Contains(logged[0], "boom") {
		t.Errorf("panic was not logged: %v", logged)
	}
	// The daemon is still alive.
	if rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"}); rec.Code != http.StatusOK {
		t.Fatalf("post-panic match: status %d", rec.Code)
	} else if decodeMatch(t, rec).Count != want {
		t.Error("post-panic match wrong")
	}
	met := parseMetrics(t, do(t, s, "GET", "/metrics", nil).Body.String())
	if met["subgeminid_requests_errors_total"] != 1 {
		t.Errorf("errors_total = %v, want 1", met["subgeminid_requests_errors_total"])
	}
}

func TestHealthz(t *testing.T) {
	s, _ := newAdderServer(t, nil)
	rec := do(t, s, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "ok" {
		t.Errorf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

// TestConcurrentMatchesAndUploads drives many requests in parallel — single
// matches with and without per-request globals and workers, batches, cache
// fills, metrics scrapes, and circuit re-uploads — to exercise the locking
// under the race detector.
func TestConcurrentMatchesAndUploads(t *testing.T) {
	s, _ := newAdderServer(t, func(c *Config) { c.MaxConcurrent = 4 })
	patterns := []string{"FA", "INV", "NAND2", "XOR2", "MUX2"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch i % 4 {
				case 0:
					req := MatchRequest{Pattern: patterns[(w+i)%len(patterns)], Globals: rails}
					if rec := do(t, s, "POST", "/v1/match", req); rec.Code != http.StatusOK {
						t.Errorf("match: status %d: %s", rec.Code, rec.Body.String())
					}
				case 1:
					req := MatchRequest{Pattern: patterns[(w+i)%len(patterns)], Workers: 2}
					if rec := do(t, s, "POST", "/v1/match", req); rec.Code != http.StatusOK {
						t.Errorf("parallel match: status %d", rec.Code)
					}
				case 2:
					b := BatchRequest{Requests: []MatchRequest{{Pattern: "FA"}, {Pattern: "INV"}}}
					if rec := do(t, s, "POST", "/v1/match/batch", b); rec.Code != http.StatusOK {
						t.Errorf("batch: status %d", rec.Code)
					}
				case 3:
					do(t, s, "GET", "/metrics", nil)
					do(t, s, "GET", "/v1/cells", nil)
				}
			}
		}(w)
	}
	// One writer swapping the circuit while matches are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			rec := do(t, s, "POST", "/v1/circuit?name=chip", nandNetlist)
			if rec.Code != http.StatusOK {
				t.Errorf("upload: status %d", rec.Code)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
}
