package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"subgemini/internal/jobs"
)

// invPairNetlist is a second tiny main circuit: two chained inverters.
const invPairNetlist = `
.GLOBAL VDD GND
MP1 b a VDD pmos
MN1 b a GND nmos
MP2 c b VDD pmos
MN2 c b GND nmos
.END
`

func TestNamedCircuitsCRUDAndSelection(t *testing.T) {
	s := mustNew(t, Config{Globals: rails})

	rec := do(t, s, "PUT", "/v1/circuits/alpha", nandNetlist)
	if rec.Code != http.StatusOK {
		t.Fatalf("put alpha: status %d: %s", rec.Code, rec.Body.String())
	}
	var info CircuitInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Key != "alpha" || info.Devices != 6 {
		t.Errorf("put alpha info = %+v, want key alpha with 6 devices", info)
	}
	if rec := do(t, s, "PUT", "/v1/circuits/beta", invPairNetlist); rec.Code != http.StatusOK {
		t.Fatalf("put beta: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, "PUT", "/v1/circuits/.bad", nandNetlist); rec.Code != http.StatusBadRequest {
		t.Errorf("invalid name: status %d, want 400", rec.Code)
	}

	rec = do(t, s, "GET", "/v1/circuits", nil)
	var list []CircuitInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list has %d circuits, want 2: %s", len(list), rec.Body.String())
	}

	// Selection via query parameter and via the request body.
	rec = do(t, s, "POST", "/v1/match?circuit=beta", MatchRequest{Pattern: "INV"})
	if rec.Code != http.StatusOK {
		t.Fatalf("match beta: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeMatch(t, rec); resp.Count != 2 || resp.Circuit != "beta" {
		t.Errorf("INV on beta: count=%d circuit=%q, want 2 on beta", resp.Count, resp.Circuit)
	}
	rec = do(t, s, "POST", "/v1/match", MatchRequest{Circuit: "alpha", Pattern: "NAND2"})
	if rec.Code != http.StatusOK {
		t.Fatalf("match alpha: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeMatch(t, rec); resp.Count != 1 {
		t.Errorf("NAND2 on alpha: count=%d, want 1", resp.Count)
	}

	// A named circuit that does not exist is 404; the empty default is
	// still the legacy 409.
	if rec := do(t, s, "POST", "/v1/match", MatchRequest{Circuit: "nope", Pattern: "INV"}); rec.Code != http.StatusNotFound {
		t.Errorf("unknown circuit: status %d, want 404", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "INV"}); rec.Code != http.StatusConflict {
		t.Errorf("missing default: status %d, want 409", rec.Code)
	}

	// Per-item selection in a batch, with the batch-level circuit as the
	// default for items that do not pick their own.
	rec = do(t, s, "POST", "/v1/match/batch", BatchRequest{Circuit: "alpha", Requests: []MatchRequest{
		{Pattern: "NAND2"},
		{Circuit: "beta", Pattern: "INV"},
	}})
	var batch BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Results[0].Match.Count != 1 || batch.Results[1].Match.Count != 2 {
		t.Errorf("batch counts = %d/%d, want 1/2",
			batch.Results[0].Match.Count, batch.Results[1].Match.Count)
	}
	if batch.Results[0].Match.Circuit != "alpha" || batch.Results[1].Match.Circuit != "beta" {
		t.Errorf("batch circuits = %q/%q, want alpha/beta",
			batch.Results[0].Match.Circuit, batch.Results[1].Match.Circuit)
	}

	if rec := do(t, s, "DELETE", "/v1/circuits/alpha", nil); rec.Code != http.StatusOK {
		t.Fatalf("delete alpha: status %d", rec.Code)
	}
	if rec := do(t, s, "GET", "/v1/circuits/alpha", nil); rec.Code != http.StatusNotFound {
		t.Errorf("get deleted: status %d, want 404", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/v1/circuits/alpha", nil); rec.Code != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", rec.Code)
	}
}

// waitJob polls a job until it reaches a terminal state.
func waitJob(t *testing.T, s *Server, id string) jobs.View {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := do(t, s, "GET", "/v1/jobs/"+id, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("poll job %s: status %d: %s", id, rec.Code, rec.Body.String())
		}
		var view jobs.View
		if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
			t.Fatal(err)
		}
		if view.State.Terminal() {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 10s", id, view.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func submitJob(t *testing.T, s *Server, req JobRequest) jobs.View {
	t.Helper()
	rec := do(t, s, "POST", "/v1/jobs", req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit job: status %d: %s", rec.Code, rec.Body.String())
	}
	var view jobs.View
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	return view
}

func TestJobsMatchAndExtract(t *testing.T) {
	s := mustNew(t, Config{Globals: rails})
	if rec := do(t, s, "PUT", "/v1/circuits/alpha", nandNetlist); rec.Code != http.StatusOK {
		t.Fatalf("put: status %d", rec.Code)
	}

	// Async match.
	view := submitJob(t, s, JobRequest{Kind: "match",
		Match: &MatchRequest{Circuit: "alpha", Pattern: "NAND2"}})
	view = waitJob(t, s, view.ID)
	if view.State != jobs.Done {
		t.Fatalf("match job ended %s: %s", view.State, view.Error)
	}
	var mr MatchResponse
	if err := json.Unmarshal(view.Result, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Count != 1 || mr.Circuit != "alpha" {
		t.Errorf("job match = %d on %q, want 1 on alpha", mr.Count, mr.Circuit)
	}

	// Async extract with store_as: the gate-level result becomes a new
	// stored circuit; the original is untouched.
	view = submitJob(t, s, JobRequest{Kind: "extract",
		Extract: &ExtractRequest{Circuit: "alpha", Cells: []string{"NAND2", "INV"},
			StoreAs: "gates", IncludeNetlist: true}})
	view = waitJob(t, s, view.ID)
	if view.State != jobs.Done {
		t.Fatalf("extract job ended %s: %s", view.State, view.Error)
	}
	var er ExtractResponse
	if err := json.Unmarshal(view.Result, &er); err != nil {
		t.Fatal(err)
	}
	if er.Devices != 2 || er.StoredAs != "gates" {
		t.Errorf("extract result = %d devices stored as %q, want 2 as gates", er.Devices, er.StoredAs)
	}
	if !strings.Contains(er.Netlist, "NAND2") {
		t.Errorf("extracted netlist missing NAND2 instance:\n%s", er.Netlist)
	}
	rec := do(t, s, "GET", "/v1/circuits/gates", nil)
	var info CircuitInfo
	json.Unmarshal(rec.Body.Bytes(), &info)
	if info.Devices != 2 {
		t.Errorf("stored gates circuit has %d devices, want 2", info.Devices)
	}
	rec = do(t, s, "GET", "/v1/circuits/alpha", nil)
	json.Unmarshal(rec.Body.Bytes(), &info)
	if info.Devices != 6 {
		t.Errorf("original circuit has %d devices after extraction, want 6 (untouched)", info.Devices)
	}

	// A failed job reports its error truthfully.
	view = submitJob(t, s, JobRequest{Kind: "match",
		Match: &MatchRequest{Circuit: "nope", Pattern: "NAND2"}})
	view = waitJob(t, s, view.ID)
	if view.State != jobs.Failed || !strings.Contains(view.Error, "nope") {
		t.Errorf("job on missing circuit: state=%s error=%q, want failed mentioning nope", view.State, view.Error)
	}

	// Submit-time validation and lookups.
	if rec := do(t, s, "POST", "/v1/jobs", JobRequest{Kind: "explode"}); rec.Code != http.StatusBadRequest {
		t.Errorf("bad kind: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/jobs", JobRequest{Kind: "match"}); rec.Code != http.StatusBadRequest {
		t.Errorf("missing payload: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "GET", "/v1/jobs/j-999999", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/v1/jobs/"+view.ID, nil); rec.Code != http.StatusConflict {
		t.Errorf("cancel finished job: status %d, want 409", rec.Code)
	}
	rec = do(t, s, "GET", "/v1/jobs", nil)
	var views []jobs.View
	if err := json.Unmarshal(rec.Body.Bytes(), &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Errorf("job list has %d entries, want 3", len(views))
	}

	met := parseMetrics(t, do(t, s, "GET", "/metrics", nil).Body.String())
	if met["subgeminid_jobs_submitted_total"] != 3 || met["subgeminid_jobs_done_total"] != 2 || met["subgeminid_jobs_failed_total"] != 1 {
		t.Errorf("job metrics wrong: submitted=%v done=%v failed=%v",
			met["subgeminid_jobs_submitted_total"], met["subgeminid_jobs_done_total"], met["subgeminid_jobs_failed_total"])
	}
}

// TestPatternCacheEviction: with a tiny cache capacity the LRU evicts and
// the counter shows up on /metrics; evicted built-ins still resolve (they
// recompile as misses).
func TestPatternCacheEviction(t *testing.T) {
	s, _ := newAdderServer(t, func(c *Config) { c.MaxPatterns = 2 })
	for _, pat := range []string{"INV", "NAND2", "XOR2", "INV"} {
		if rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: pat}); rec.Code != http.StatusOK {
			t.Fatalf("match %s: status %d", pat, rec.Code)
		}
	}
	c := s.cache.counters()
	if c.size > 2 {
		t.Errorf("cache size %d exceeds capacity 2", c.size)
	}
	if c.evictions == 0 {
		t.Error("no evictions recorded with capacity 2 and 3 distinct patterns")
	}
	met := parseMetrics(t, do(t, s, "GET", "/metrics", nil).Body.String())
	if met["subgeminid_pattern_cache_evictions_total"] != float64(c.evictions) {
		t.Errorf("metrics evictions = %v, counters say %d",
			met["subgeminid_pattern_cache_evictions_total"], c.evictions)
	}
}

// TestConcurrentUploadVsInFlightMatches is the regression test for the
// store's isolation contract: replacing a circuit mid-match must not race
// with matches running against the replaced entry's CSR view and scratch
// pool (run under -race).  Readers pin the name both ways (query and
// body), mix sequential and parallel matches, and extract jobs clone the
// circuit while the writer keeps replacing it.
func TestConcurrentUploadVsInFlightMatches(t *testing.T) {
	s := mustNew(t, Config{Globals: rails, MaxConcurrent: 4, JobWorkers: 2})
	if rec := do(t, s, "PUT", "/v1/circuits/chip", nandNetlist); rec.Code != http.StatusOK {
		t.Fatalf("seed put: status %d", rec.Code)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				req := MatchRequest{Circuit: "chip", Pattern: []string{"NAND2", "INV"}[i%2], Globals: rails}
				if i%3 == 0 {
					req.Workers = 2
				}
				path := "/v1/match"
				if i%2 == 0 {
					req.Circuit = ""
					path = "/v1/match?circuit=chip"
				}
				rec := do(t, s, "POST", path, req)
				// The count depends on which upload won, but every request
				// must succeed: the entry a match acquired stays alive and
				// consistent for the whole run.
				if rec.Code != http.StatusOK {
					t.Errorf("match during replace: status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			body := []string{nandNetlist, invPairNetlist}[i%2]
			if rec := do(t, s, "PUT", "/v1/circuits/chip", body); rec.Code != http.StatusOK {
				t.Errorf("replace: status %d", rec.Code)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			view := submitJob(t, s, JobRequest{Kind: "extract",
				Extract: &ExtractRequest{Circuit: "chip"}})
			waitJob(t, s, view.ID)
		}
	}()
	wg.Wait()
}

// TestRestartAfterKillRecoversStoreAndFailsInterruptedJob is the
// acceptance test of the durable-store PR: a daemon killed (abandoned
// without Close, the in-process stand-in for kill -9) while a job is
// running must, on restart over the same data directory, reload every
// snapshotted circuit, report the interrupted job as failed, and serve
// matches against all reloaded circuits.
func TestRestartAfterKillRecoversStoreAndFailsInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Globals: rails, DataDir: dir, JobWorkers: 1}

	s1, err := New(cfg)
	if err != nil {
		t.Fatalf("first boot: %v", err)
	}
	if rec := do(t, s1, "PUT", "/v1/circuits/alpha?name=chip_a", nandNetlist); rec.Code != http.StatusOK {
		t.Fatalf("put alpha: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s1, "PUT", "/v1/circuits/beta", invPairNetlist); rec.Code != http.StatusOK {
		t.Fatalf("put beta: status %d", rec.Code)
	}

	// Block the job mid-run so its record is on disk in the running state.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s1.testCandidateHook = func() {
		once.Do(func() { close(started) })
		<-release
	}
	// The first daemon must be drained before TempDir cleanup, whatever
	// path the test takes out.
	defer func() {
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s1.Close(ctx)
	}()
	view := submitJob(t, s1, JobRequest{Kind: "match",
		Match: &MatchRequest{Circuit: "alpha", Pattern: "NAND2"}})
	<-started

	// "kill -9": no shutdown, no Close.  A second daemon boots over the
	// same data directory while the first still hangs.
	s2 := mustNew(t, cfg)

	rec := do(t, s2, "GET", "/v1/circuits", nil)
	var list []CircuitInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	byKey := map[string]CircuitInfo{}
	for _, info := range list {
		byKey[info.Key] = info
	}
	if len(byKey) != 2 || byKey["alpha"].Devices != 6 || byKey["beta"].Devices != 4 {
		t.Fatalf("reloaded circuits wrong: %+v", list)
	}
	if byKey["alpha"].Name != "chip_a" {
		t.Errorf("alpha display name %q did not survive restart, want chip_a", byKey["alpha"].Name)
	}

	// The interrupted job is reported failed, not lost and not re-run.
	rec = do(t, s2, "GET", "/v1/jobs/"+view.ID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("job after restart: status %d: %s", rec.Code, rec.Body.String())
	}
	var recovered jobs.View
	if err := json.Unmarshal(rec.Body.Bytes(), &recovered); err != nil {
		t.Fatal(err)
	}
	if recovered.State != jobs.Failed || !strings.Contains(recovered.Error, "interrupted") {
		t.Errorf("recovered job: state=%s error=%q, want failed/interrupted", recovered.State, recovered.Error)
	}

	// Every reloaded circuit serves matches.
	for _, c := range []struct {
		circuit, pattern string
		want             int
	}{{"alpha", "NAND2", 1}, {"beta", "INV", 2}} {
		rec := do(t, s2, "POST", "/v1/match", MatchRequest{Circuit: c.circuit, Pattern: c.pattern})
		if rec.Code != http.StatusOK {
			t.Fatalf("match %s on reloaded %s: status %d: %s", c.pattern, c.circuit, rec.Code, rec.Body.String())
		}
		if resp := decodeMatch(t, rec); resp.Count != c.want {
			t.Errorf("%s on reloaded %s: count=%d, want %d", c.pattern, c.circuit, resp.Count, c.want)
		}
	}

	met := parseMetrics(t, do(t, s2, "GET", "/metrics", nil).Body.String())
	if met["subgeminid_jobs_recovered_total"] != 1 {
		t.Errorf("jobs_recovered_total = %v, want 1", met["subgeminid_jobs_recovered_total"])
	}
	if met["subgeminid_store_circuits"] != 2 {
		t.Errorf("store_circuits = %v, want 2", met["subgeminid_store_circuits"])
	}
}

// TestUploadedPatternSurvivesRestart: an inline pattern used once is
// persisted with the data directory and resolvable by name after a
// restart.
func TestUploadedPatternSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Globals: rails, DataDir: dir}
	s1 := mustNew(t, cfg)
	if rec := do(t, s1, "PUT", "/v1/circuits/alpha", nandNetlist); rec.Code != http.StatusOK {
		t.Fatalf("put: status %d", rec.Code)
	}
	rec := do(t, s1, "POST", "/v1/match", MatchRequest{Circuit: "alpha", Netlist: invPattern})
	if rec.Code != http.StatusOK {
		t.Fatalf("inline pattern: status %d: %s", rec.Code, rec.Body.String())
	}

	s2 := mustNew(t, cfg)
	rec = do(t, s2, "POST", "/v1/match", MatchRequest{Circuit: "alpha", Pattern: "MYINV"})
	if rec.Code != http.StatusOK {
		t.Fatalf("persisted pattern after restart: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeMatch(t, rec); resp.Count != 1 || !resp.CacheHit {
		t.Errorf("MYINV after restart: count=%d hit=%v, want 1 from cache", resp.Count, resp.CacheHit)
	}
}
