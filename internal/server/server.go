// Package server implements the subgeminid daemon logic: a long-lived
// HTTP/JSON matching service hosting many named circuits and a library of
// compiled patterns in memory, serving synchronous match queries and
// asynchronous jobs against them.  It amortizes the per-pattern
// parse/compile cost the one-shot CLIs pay on every invocation (patterns
// are compiled once into a bounded LRU cache) and the per-circuit
// flattening cost (each stored circuit keeps its CSR view and Phase II
// scratch pool), and adds the robustness a daemon needs: a semaphore
// capping concurrent synchronous match work, per-request timeouts enforced
// through the matcher's cancellation hook, request-body size limits, and
// panic isolation.
//
// Endpoints:
//
//	POST   /v1/match                match one pattern (?circuit= selects the target)
//	POST   /v1/match/batch          match many patterns in one request
//	PUT    /v1/circuits/{name}      store or replace a named circuit (netlist body)
//	PATCH  /v1/circuits/{name}      apply a batch of edit ops, bumping the version
//	GET    /v1/circuits/{name}      describe one stored circuit
//	GET    /v1/circuits/{name}/versions  list the circuit's edit history
//	DELETE /v1/circuits/{name}      remove a stored circuit and its snapshot
//	GET    /v1/circuits             list stored circuits
//	POST   /v1/circuit              legacy alias: store the default circuit
//	GET    /v1/circuit              legacy alias: describe the default circuit
//	POST   /v1/jobs                 submit an async job (match, batch, extract)
//	GET    /v1/jobs                 list retained jobs
//	GET    /v1/jobs/{id}            poll one job's state and result
//	DELETE /v1/jobs/{id}            cancel a queued or running job
//	GET    /v1/cells                list built-in cells and uploaded patterns
//	GET    /healthz                 liveness probe (process is up)
//	GET    /readyz                  readiness probe (not draining, store healthy)
//	GET    /metrics                 Prometheus-style text metrics
//	GET    /debug/requests          flight recorder: recent request timelines, with filters
//	GET    /debug/requests/{id}     full span timeline JSON for one request ID
//	GET    /debug/pprof/            Go runtime profiles (CPU, heap, goroutine, ...)
//
// Circuits live in an internal/store Store: named, ref-counted entries
// owning the circuit, its CSR view, and its scratch pool, LRU-demoted
// under a byte budget and — with a data directory — snapshotted to disk
// and reloaded on boot.  Jobs live in an internal/jobs Engine: a bounded
// queue and worker pool whose records survive restarts (interrupted jobs
// are reported failed, not lost).
//
// Concurrency model: each stored circuit is shared by all in-flight
// matches against it under the entry's read lock.  The matcher only ever
// mutates the main circuit to mark global nets, so the server pre-marks
// every global a request needs (config globals, request globals, and the
// pattern's own declared globals) under the entry write lock before
// matching begins; the match itself then only reads the circuit.
// Replacing a name installs a fresh entry — in-flight matches keep the old
// circuit alive through their ref-counted handles, so uploads never block
// behind long matches.  Global marks are monotonic and circuit-wide,
// matching the CLI semantics where .GLOBAL directives and -globals apply
// to the whole run.
//
// Under overload the daemon sheds by priority rather than degrading
// uniformly: when the configured inflight or heap budget is exceeded
// (Config.ShedInflight / Config.ShedMemoryBytes), the bulk endpoints —
// batch matches, sweeps, and async job submission — answer 429 with a
// Retry-After hint while single synchronous matches keep flowing through
// admission control.  /readyz reports not-ready while the daemon is
// draining for shutdown or the store's last persistence operation failed
// (see store.Healthy), so orchestrators stop routing before requests start
// failing; /healthz stays a pure liveness probe.  See OPERATIONS.md for
// the operator-facing view of all of this.
package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"subgemini/internal/delta"
	"subgemini/internal/faults"
	"subgemini/internal/graph"
	"subgemini/internal/jobs"
	"subgemini/internal/netlist"
	"subgemini/internal/obs"
	"subgemini/internal/store"
)

func init() {
	faults.Register("server.handler", "start of every HTTP request, inside the panic-isolation scope (error answers 503, panic exercises recovery)")
}

// DefaultCircuit is the store key the legacy single-circuit endpoints
// (POST/GET /v1/circuit) and circuit-less match requests operate on.
const DefaultCircuit = "default"

// Config parameterizes a Server.  The zero value is usable: an empty
// memory-only server with no circuits loaded (upload via PUT
// /v1/circuits/{name}) and defaults for every limit.
type Config struct {
	// Circuit is the initial default circuit (stored under DefaultCircuit);
	// nil starts the server empty.  It takes precedence over a snapshot of
	// the default circuit reloaded from DataDir.
	Circuit *graph.Circuit

	// Globals lists net names treated as special signals for every match
	// (the daemon-level analogue of the CLI's -globals flag).  They are
	// marked on every stored circuit at Put time.
	Globals []string

	// DataDir, when non-empty, makes circuits and jobs durable: circuit
	// snapshots and the store manifest live under it, job records under
	// DataDir/jobs, and both are reloaded on construction.  "" keeps
	// everything in memory.
	DataDir string

	// MaxStoreBytes bounds the estimated resident bytes of stored
	// circuits; least-recently-used idle circuits with snapshots are
	// demoted past it and reloaded on demand.  0 = unlimited.
	MaxStoreBytes int64

	// MaxPatterns caps the compiled-pattern cache entries; the
	// least-recently-used pattern is evicted past it.  0 = unlimited.
	MaxPatterns int

	// JobWorkers sizes the async job worker pool (0 = 2).
	JobWorkers int

	// JobQueue bounds queued-but-not-started jobs (0 = 64).
	JobQueue int

	// JobRetention keeps finished job records and results visible this
	// long (0 = 1h).
	JobRetention time.Duration

	// MaxConcurrent caps simultaneously executing synchronous match runs
	// (admission control); further requests queue until a slot frees or
	// their deadline expires.  0 selects GOMAXPROCS.  Async jobs are
	// bounded by JobWorkers instead.
	MaxConcurrent int

	// DefaultTimeout bounds each synchronous match request that does not
	// set its own timeout_ms.  0 selects 30s.  Jobs have no default
	// deadline — escaping the request-timeout envelope is their purpose —
	// but honor a per-request timeout_ms when set.
	DefaultTimeout time.Duration

	// MaxTimeout caps the per-request timeout_ms so a client cannot pin a
	// worker slot arbitrarily long.  0 selects 5m.
	MaxTimeout time.Duration

	// MaxBodyBytes limits request body sizes (netlist uploads included).
	// 0 selects 16 MiB.
	MaxBodyBytes int64

	// MaxWorkers caps the per-request "workers" fan-out.  0 selects
	// GOMAXPROCS.
	MaxWorkers int

	// Phase1Workers is the default Phase I relabeling fan-out for requests
	// that do not set "workers" themselves (capped by MaxWorkers either
	// way).  0 leaves Phase I sequential by default.
	Phase1Workers int

	// ShedInflight, when > 0, turns on priority load shedding: while at
	// least this many synchronous match runs are in flight, the bulk
	// endpoints (POST /v1/match/batch, POST /v1/sweep, POST /v1/jobs) are
	// shed with 429 + Retry-After so single POST /v1/match requests keep
	// getting slots.  0 disables inflight-based shedding.
	ShedInflight int

	// ShedMemoryBytes, when > 0, sheds the same bulk endpoints while the
	// Go heap in use is at or past this many bytes — bulk work is the
	// memory amplifier (wide batches, whole-library sweeps), so it is what
	// gets turned away first.  0 disables memory-based shedding.
	ShedMemoryBytes int64

	// RetryAfter is the Retry-After hint on shed responses, rounded down
	// to whole seconds (minimum 1).  0 selects 2s.
	RetryAfter time.Duration

	// PreloadBuiltins compiles every built-in library cell into the
	// pattern cache at construction time, so first requests are cache
	// hits.  Preloading counts neither hits nor misses.
	PreloadBuiltins bool

	// DisableIncremental turns off the versioned result cache: every match
	// and sweep runs the full engines regardless of edit history, and the
	// "incremental-sweep" job kind is refused.  Results are bit-identical
	// either way (the incremental engine is differentially tested against
	// the full one); this is the operational escape hatch, mirrored by the
	// daemon's -noincremental flag.
	DisableIncremental bool

	// ResultCacheSize bounds the versioned result cache entries (one per
	// circuit × pattern structure pair); 0 selects the delta package
	// default.
	ResultCacheSize int

	// Log, when non-nil, is the structured logger for every server-side
	// event (handler panics, store evictions, job recovery, slow-request
	// lines); build one with obs.NewLogger.  Nil falls back to Logf, then
	// to discarding.
	Log *slog.Logger

	// Logf, when non-nil and Log is nil, receives the same events as
	// pre-rendered printf lines.  Retained for embedders and tests that
	// capture log output as strings.
	Logf func(format string, args ...any)

	// SlowRequest is the latency at or past which a request is always kept
	// by the flight recorder and logged with its top spans inline.
	// 0 selects 1s.
	SlowRequest time.Duration

	// FlightRecorderSize is how many completed request timelines the
	// flight recorder ring retains for /debug/requests.  0 selects 256.
	FlightRecorderSize int

	// FlightSampleN keeps one in N uninteresting requests (errors, sheds,
	// cancellations, and slow requests are always kept).  0 selects 16.
	FlightSampleN int
}

// Server is the daemon state.  Create one with New; it implements
// http.Handler.
type Server struct {
	cfg Config

	store *store.Store
	jobs  *jobs.Engine
	cache *patternCache
	sem   chan struct{}
	met   metrics
	mux   *http.ServeMux

	// rcache is the versioned incremental-match result cache; nil when
	// Config.DisableIncremental is set (the full engines always run).
	rcache *delta.ResultCache

	// log is the resolved structured logger (never nil) and rec the
	// always-on tail-sampling flight recorder behind /debug/requests.
	log *slog.Logger
	rec *obs.Recorder

	// Request IDs are a boot nonce plus a process-local sequence; an
	// inbound X-Request-Id that sanitizes cleanly is honored instead.
	ridBoot string
	ridSeq  atomic.Uint64

	// draining flips once shutdown begins: /readyz goes not-ready so load
	// balancers stop routing here while in-flight requests finish.
	draining atomic.Bool

	// mem coarsely samples the Go heap for memory-based shedding.
	mem memSampler

	// testCandidateHook, when non-nil, runs on every cancellation poll of
	// every match.  Tests use it to make runs deterministically slow or to
	// coordinate with in-flight requests.
	testCandidateHook func()
}

// New builds a Server from cfg, reloading any circuits, patterns, and job
// records persisted under cfg.DataDir.  A corrupt store manifest or
// unreadable snapshot is a construction error — the daemon refuses to boot
// rather than silently drop circuits.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		cache:   newPatternCache(cfg.MaxPatterns),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		mux:     http.NewServeMux(),
		rec:     obs.NewRecorder(cfg.FlightRecorderSize, cfg.FlightSampleN, cfg.SlowRequest),
		ridBoot: fmt.Sprintf("r-%08x", time.Now().UnixNano()&0xffffffff),
	}
	switch {
	case cfg.Log != nil:
		s.log = cfg.Log
	case cfg.Logf != nil:
		s.log = obs.LogfLogger(cfg.Logf)
	default:
		s.log = obs.Discard()
	}
	if !cfg.DisableIncremental {
		s.rcache = delta.NewResultCache(cfg.ResultCacheSize)
	}
	st, err := store.Open(store.Config{
		Dir:      cfg.DataDir,
		MaxBytes: cfg.MaxStoreBytes,
		Globals:  cfg.Globals,
		Log:      s.log.With("component", "store"),
	})
	if err != nil {
		return nil, fmt.Errorf("opening circuit store: %w", err)
	}
	s.store = st
	jobsDir := ""
	if cfg.DataDir != "" {
		jobsDir = filepath.Join(cfg.DataDir, "jobs")
	}
	eng, err := jobs.New(jobs.Config{
		Workers:   cfg.JobWorkers,
		Queue:     cfg.JobQueue,
		Retention: cfg.JobRetention,
		Dir:       jobsDir,
		Log:       s.log.With("component", "jobs"),
	})
	if err != nil {
		return nil, fmt.Errorf("starting job engine: %w", err)
	}
	s.jobs = eng
	if cfg.Circuit != nil {
		if _, err := s.store.Put(DefaultCircuit, cfg.Circuit); err != nil {
			return nil, fmt.Errorf("storing initial circuit: %w", err)
		}
	}
	// Patterns persisted by a previous run re-enter the compiled cache so
	// a restarted daemon stays warm; preloads count neither hits nor
	// misses.
	for name, tpl := range s.store.Patterns() {
		s.cache.put(name, tpl, false)
	}
	if cfg.PreloadBuiltins {
		s.preloadBuiltins()
	}
	s.routes()
	return s, nil
}

// Close shuts the daemon's background state down: the job engine drains
// (running jobs get until ctx's deadline, queued jobs are cancelled) and
// the store flushes its manifest.  Call it after the HTTP listener stops.
func (s *Server) Close(ctx context.Context) error {
	jerr := s.jobs.Close(ctx)
	if serr := s.store.Close(); serr != nil {
		return serr
	}
	return jerr
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/match", s.handleMatch)
	s.mux.HandleFunc("POST /v1/match/batch", s.handleBatch)
	s.mux.HandleFunc("PUT /v1/circuits/{name}", s.handleCircuitPut)
	s.mux.HandleFunc("PATCH /v1/circuits/{name}", s.handleCircuitPatch)
	s.mux.HandleFunc("GET /v1/circuits/{name}", s.handleCircuitGet)
	s.mux.HandleFunc("GET /v1/circuits/{name}/versions", s.handleCircuitVersions)
	s.mux.HandleFunc("DELETE /v1/circuits/{name}", s.handleCircuitDelete)
	s.mux.HandleFunc("GET /v1/circuits", s.handleCircuitList)
	// Legacy single-circuit API: aliases for the default circuit.
	s.mux.HandleFunc("POST /v1/circuit", s.handleLegacyCircuitUpload)
	s.mux.HandleFunc("GET /v1/circuit", s.handleLegacyCircuitInfo)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("PUT /v1/libraries/{name}", s.handleLibraryPut)
	s.mux.HandleFunc("GET /v1/libraries/{name}", s.handleLibraryGet)
	s.mux.HandleFunc("DELETE /v1/libraries/{name}", s.handleLibraryDelete)
	s.mux.HandleFunc("GET /v1/libraries", s.handleLibraryList)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/cells", s.handleCells)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Flight recorder: recent request timelines, filterable, and a full
	// span tree per request ID (see internal/obs and OPERATIONS.md
	// "Request forensics").
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /debug/requests/{id}", s.handleDebugRequestByID)
	// Go's profiling endpoints, on the daemon's own mux rather than
	// http.DefaultServeMux, so they share the panic isolation and request
	// accounting of every other route.  pprof.Index also serves the named
	// runtime profiles (heap, goroutine, block, mutex, ...).
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// preloadBuiltins warms the pattern cache with the whole built-in library.
func (s *Server) preloadBuiltins() {
	for _, info := range s.cache.list() {
		if !info.Cached {
			s.cache.resolve(info.Name, false)
		}
	}
}

// PreloadPatterns compiles every .SUBCKT of a parsed netlist into the
// pattern cache as uploaded patterns, keyed by subcircuit name.  Preloads
// count neither cache hits nor misses.  It returns how many patterns were
// added before the first compile error, if any.
func (s *Server) PreloadPatterns(f *netlist.File) (int, error) {
	n := 0
	for name := range f.Subckts {
		template, err := f.Pattern(name)
		if err != nil {
			return n, fmt.Errorf("pattern %s: %w", name, err)
		}
		s.cache.put(name, template, false)
		n++
	}
	return n, nil
}

// statusWriter captures the response status for request accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// ServeHTTP wraps the router with body limits, request accounting, panic
// isolation, and request telemetry: every request gets an ID (minted, or
// honored from an inbound X-Request-Id), a span timeline carried on the
// context, and an X-Request-Id response header — on every outcome,
// including sheds, faults, and panics.  A panicking handler yields a 500
// response and a log line, never a dead daemon.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	tl := obs.NewTimeline(s.mintRequestID(r), "http", r.Method, r.URL.Path)
	r = r.WithContext(obs.NewContext(r.Context(), tl))
	w.Header().Set("X-Request-Id", tl.ID())
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		if rec := recover(); rec != nil {
			buf := make([]byte, 8<<10)
			buf = buf[:runtime.Stack(buf, false)]
			s.log.ErrorContext(r.Context(), "panic serving request",
				"method", r.Method, "path", r.URL.Path, "panic", fmt.Sprint(rec), "stack", string(buf))
			if sw.status == 0 {
				http.Error(sw, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
			}
		}
		if sw.status >= 400 {
			s.met.errors.Add(1)
		}
		s.finishRequest(tl, sw.status)
	}()
	// Fault point inside the recovery scope: error mode turns requests
	// away with 503, panic mode exercises the isolation path above.
	if err := faults.Fire("server.handler"); err != nil {
		writeError(sw, errf(http.StatusServiceUnavailable, "injected handler fault: %v", err))
		return
	}
	s.mux.ServeHTTP(sw, r)
}

// StoredCircuits returns how many circuits the store holds (resident or
// demoted to disk).
func (s *Server) StoredCircuits() int { return s.store.Len() }

// CircuitShape returns the default circuit's name and size (0, 0 and ""
// when none is stored).
func (s *Server) CircuitShape() (name string, devices, nets int) {
	info, ok := s.store.Get(DefaultCircuit)
	if !ok {
		return "", 0, 0
	}
	return info.Display, info.Devices, info.Nets
}
