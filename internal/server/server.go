// Package server implements the subgeminid daemon logic: a long-lived
// HTTP/JSON matching service that keeps a main circuit and a library of
// compiled patterns resident in memory and serves match queries against
// them.  It amortizes the per-pattern parse/compile cost that the one-shot
// CLIs pay on every invocation (patterns are compiled once into a cache),
// and adds the robustness a daemon needs: a semaphore capping concurrent
// match work, per-request timeouts enforced through the matcher's
// cancellation hook, request-body size limits, and panic isolation.
//
// Endpoints:
//
//	POST /v1/match        match one pattern against the resident circuit
//	POST /v1/match/batch  match many patterns in one request
//	POST /v1/circuit      replace the resident main circuit (netlist body)
//	GET  /v1/circuit      describe the resident main circuit
//	GET  /v1/cells        list built-in cells and uploaded patterns
//	GET  /healthz         liveness probe
//	GET  /metrics         Prometheus-style text metrics: counters, per-phase
//	                      duration histograms, per-pattern outcome counters
//	GET  /debug/pprof/    Go runtime profiles (CPU, heap, goroutine, ...)
//
// Concurrency model: the resident circuit is shared by all in-flight
// matches under a read lock.  The matcher only ever mutates the main
// circuit to mark global nets, so the server pre-marks every global a
// request needs (config globals, request globals, and the pattern's own
// declared globals) under the write lock before matching begins; the match
// itself then only reads the circuit.  Circuit replacement takes the write
// lock, draining in-flight matches first.  Global marks are monotonic and
// circuit-wide, matching the CLI semantics where .GLOBAL directives and
// -globals apply to the whole run.
package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"subgemini/internal/core"
	"subgemini/internal/graph"
	"subgemini/internal/netlist"
)

// Config parameterizes a Server.  The zero value is usable: an empty
// server with no circuit loaded (upload one via POST /v1/circuit) and
// defaults for every limit.
type Config struct {
	// Circuit is the initial resident main circuit; nil starts the server
	// empty.
	Circuit *graph.Circuit

	// Globals lists net names treated as special signals for every match
	// (the daemon-level analogue of the CLI's -globals flag).  They are
	// marked on the resident circuit at startup and after every upload.
	Globals []string

	// MaxConcurrent caps simultaneously executing match runs (admission
	// control); further requests queue until a slot frees or their
	// deadline expires.  0 selects GOMAXPROCS.
	MaxConcurrent int

	// DefaultTimeout bounds each match request that does not set its own
	// timeout_ms.  0 selects 30s.
	DefaultTimeout time.Duration

	// MaxTimeout caps the per-request timeout_ms so a client cannot pin a
	// worker slot arbitrarily long.  0 selects 5m.
	MaxTimeout time.Duration

	// MaxBodyBytes limits request body sizes (netlist uploads included).
	// 0 selects 16 MiB.
	MaxBodyBytes int64

	// MaxWorkers caps the per-request "workers" fan-out.  0 selects
	// GOMAXPROCS.
	MaxWorkers int

	// Phase1Workers is the default Phase I relabeling fan-out for requests
	// that do not set "workers" themselves (capped by MaxWorkers either
	// way).  0 leaves Phase I sequential by default.
	Phase1Workers int

	// PreloadBuiltins compiles every built-in library cell into the
	// pattern cache at construction time, so first requests are cache
	// hits.  Preloading counts neither hits nor misses.
	PreloadBuiltins bool

	// Logf, when non-nil, receives one line per recovered handler panic
	// and other rare server-side events.
	Logf func(format string, args ...any)
}

// Server is the daemon state.  Create one with New; it implements
// http.Handler.
type Server struct {
	cfg Config

	// mu guards the resident circuit: matches hold RLock, uploads and
	// global marking hold Lock.  ckCSR is the circuit's flat CSR view,
	// always built together with circuit under the write lock so the pair
	// stays consistent; matches hand it to the matcher so every request
	// shares one flattening instead of rebuilding it per Find.
	mu      sync.RWMutex
	circuit *graph.Circuit
	ckCSR   *core.CSR

	// scratch recycles Phase II per-candidate main-graph scratch across
	// requests; sized to the resident circuit, it survives uploads only
	// when the new circuit has the same vertex count (the pool rejects
	// mismatched scratch itself).
	scratch core.ScratchPool

	cache *patternCache
	sem   chan struct{}
	met   metrics
	mux   *http.ServeMux

	// testCandidateHook, when non-nil, runs on every cancellation poll of
	// every match.  Tests use it to make runs deterministically slow or to
	// coordinate with in-flight requests.
	testCandidateHook func()
}

// New builds a Server from cfg, applying defaults and marking cfg.Globals
// on the initial circuit.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:     cfg,
		circuit: cfg.Circuit,
		cache:   newPatternCache(),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		mux:     http.NewServeMux(),
	}
	if s.circuit != nil {
		for _, name := range cfg.Globals {
			s.circuit.MarkGlobal(name)
		}
		s.ckCSR = core.NewCSR(s.circuit)
	}
	if cfg.PreloadBuiltins {
		s.preloadBuiltins()
	}
	s.routes()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/match", s.handleMatch)
	s.mux.HandleFunc("POST /v1/match/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/circuit", s.handleCircuitUpload)
	s.mux.HandleFunc("GET /v1/circuit", s.handleCircuitInfo)
	s.mux.HandleFunc("GET /v1/cells", s.handleCells)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Go's profiling endpoints, on the daemon's own mux rather than
	// http.DefaultServeMux, so they share the panic isolation and request
	// accounting of every other route.  pprof.Index also serves the named
	// runtime profiles (heap, goroutine, block, mutex, ...).
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// preloadBuiltins warms the pattern cache with the whole built-in library.
func (s *Server) preloadBuiltins() {
	for _, info := range s.cache.list() {
		if !info.Cached {
			s.cache.resolve(info.Name, false)
		}
	}
}

// PreloadPatterns compiles every .SUBCKT of a parsed netlist into the
// pattern cache as uploaded patterns, keyed by subcircuit name.  Preloads
// count neither cache hits nor misses.  It returns how many patterns were
// added before the first compile error, if any.
func (s *Server) PreloadPatterns(f *netlist.File) (int, error) {
	n := 0
	for name := range f.Subckts {
		template, err := f.Pattern(name)
		if err != nil {
			return n, fmt.Errorf("pattern %s: %w", name, err)
		}
		s.cache.put(name, template, false)
		n++
	}
	return n, nil
}

// logf logs through the configured sink, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// statusWriter captures the response status for request accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// ServeHTTP wraps the router with body limits, request accounting, and
// panic isolation: a panicking handler yields a 500 response and a log
// line, never a dead daemon.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		if rec := recover(); rec != nil {
			buf := make([]byte, 8<<10)
			buf = buf[:runtime.Stack(buf, false)]
			s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, buf)
			if sw.status == 0 {
				http.Error(sw, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
			}
		}
		if sw.status >= 400 {
			s.met.errors.Add(1)
		}
	}()
	s.mux.ServeHTTP(sw, r)
}

// lockCircuitWithGlobals acquires the circuit read lock with every given
// net name already marked global on the resident circuit, and returns the
// circuit (nil when none is loaded — the read lock is held either way, and
// the caller must RUnlock).  Marking needs the write lock, so the fast
// path checks the marks under RLock and the slow path re-verifies that the
// circuit was not swapped between marking and re-locking.  Once this
// returns, the matcher's own global marking finds every mark already set
// and the match touches the shared circuit strictly read-only.
func (s *Server) lockCircuitWithGlobals(names []string) *graph.Circuit {
	for {
		s.mu.RLock()
		ckt := s.circuit
		if ckt == nil {
			return nil
		}
		missing := false
		for _, name := range names {
			if n := ckt.NetByName(name); n != nil && !n.Global {
				missing = true
				break
			}
		}
		if !missing {
			return ckt
		}
		s.mu.RUnlock()
		s.mu.Lock()
		if s.circuit == ckt {
			for _, name := range names {
				ckt.MarkGlobal(name)
			}
		}
		s.mu.Unlock()
	}
}

// CircuitShape returns the resident circuit's name and size (0, 0 and ""
// when no circuit is loaded).
func (s *Server) CircuitShape() (name string, devices, nets int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.circuit == nil {
		return "", 0, 0
	}
	return s.circuit.Name, s.circuit.NumDevices(), s.circuit.NumNets()
}
