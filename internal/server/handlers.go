package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"subgemini/internal/core"
	"subgemini/internal/delta"
	"subgemini/internal/faults"
	"subgemini/internal/graph"
	"subgemini/internal/netlist"
	"subgemini/internal/obs"
	"subgemini/internal/store"
)

// MatchRequest is the body of POST /v1/match and each element of a batch.
// The pattern comes either from the cache/built-in library by name
// ("pattern") or inline as netlist source ("netlist" plus optional
// "subckt"); inline patterns are compiled into the cache under their
// .SUBCKT name so later requests can use the name alone.  "circuit"
// selects the stored circuit to match against (also settable via the
// ?circuit= query parameter; empty means the default circuit).  The other
// option fields mirror the subgemini CLI flags.
type MatchRequest struct {
	Circuit    string            `json:"circuit,omitempty"`
	Pattern    string            `json:"pattern,omitempty"`
	Netlist    string            `json:"netlist,omitempty"`
	Subckt     string            `json:"subckt,omitempty"`
	Globals    []string          `json:"globals,omitempty"`
	Bind       map[string]string `json:"bind,omitempty"`
	NonOverlap bool              `json:"nonoverlap,omitempty"`
	Max        int               `json:"max,omitempty"`
	Workers    int               `json:"workers,omitempty"`
	TimeoutMS  int               `json:"timeout_ms,omitempty"`

	// SinceVersion, when > 0, floors the incremental replay base: the run
	// only replays from a result-cache capture at this circuit version or
	// newer (older captures force a full, re-capturing run).  Also settable
	// via the ?since_version= query parameter.  Purely an optimization
	// hint — results are identical for every value.
	SinceVersion uint64 `json:"since_version,omitempty"`
}

// InstanceJSON is one verified embedding, as pattern-name → image-name maps.
type InstanceJSON struct {
	Devices map[string]string `json:"devices"`
	Nets    map[string]string `json:"nets"`
}

// StatsJSON is the per-run instrumentation subset exposed to clients.
type StatsJSON struct {
	Instances      int    `json:"instances"`
	MatchedDevices int    `json:"matched_devices"`
	CVSize         int    `json:"cv_size"`
	KeyVertex      string `json:"key_vertex,omitempty"`
	Candidates     int    `json:"candidates"`
	Phase1Passes   int    `json:"phase1_passes"`
	Phase2Passes   int    `json:"phase2_passes"`
	Guesses        int    `json:"guesses"`
	Backtracks     int    `json:"backtracks"`
	Phase1Micros   int64  `json:"phase1_us"`
	Phase2Micros   int64  `json:"phase2_us"`

	// Region-localized Phase II engine instrumentation; zero/omitted when
	// the whole-graph engine ran.
	RegionRadius   int `json:"region_radius,omitempty"`
	RegionMaxSize  int `json:"region_max_size,omitempty"`
	RegionVertices int `json:"region_vertices,omitempty"`

	// Incremental engine instrumentation; omitted when the run did not go
	// through core.FindIncremental.
	IncrementalMode string `json:"incremental_mode,omitempty"`
	Replayed        int    `json:"replayed,omitempty"`
	Recomputed      int    `json:"recomputed,omitempty"`
}

// MatchResponse is the body of a successful POST /v1/match.
type MatchResponse struct {
	Circuit   string         `json:"circuit"`
	Pattern   string         `json:"pattern"`
	Count     int            `json:"count"`
	Instances []InstanceJSON `json:"instances"`
	Stats     StatsJSON      `json:"stats"`
	CacheHit  bool           `json:"cache_hit"`

	// Version is the edit version of the circuit the match ran against;
	// Incremental reports how the run used the versioned result cache
	// (omitted when the incremental engine did not run).
	Version     uint64           `json:"version,omitempty"`
	Incremental *IncrementalJSON `json:"incremental,omitempty"`
}

// BatchRequest is the body of POST /v1/match/batch.
type BatchRequest struct {
	// Circuit is the default stored-circuit selection for items that do
	// not pick their own; a ?circuit= query parameter fills it when empty.
	Circuit  string         `json:"circuit,omitempty"`
	Requests []MatchRequest `json:"requests"`
}

// fillCircuits resolves the batch's per-item circuit selection: an item's
// own choice wins, then the batch-level default.
func (b *BatchRequest) fillCircuits() {
	if b.Circuit == "" {
		return
	}
	for i := range b.Requests {
		if b.Requests[i].Circuit == "" {
			b.Requests[i].Circuit = b.Circuit
		}
	}
}

// BatchItem is one per-pattern outcome of a batch; failed items carry an
// error and an HTTP-style status instead of a match.
type BatchItem struct {
	Index   int            `json:"index"`
	Pattern string         `json:"pattern,omitempty"`
	Status  int            `json:"status"`
	Error   string         `json:"error,omitempty"`
	Match   *MatchResponse `json:"match,omitempty"`
}

// BatchResponse is the body of a batch reply; the top-level status is 200
// whenever the batch itself was well-formed, with per-item outcomes inside.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// CircuitInfo describes one stored circuit.  Name is the circuit's own
// (display) name; Key is its store key.  Resident and Snapshot expose the
// store's memory/durability state for the entry.
type CircuitInfo struct {
	Key      string   `json:"key,omitempty"`
	Name     string   `json:"name"`
	Devices  int      `json:"devices"`
	Nets     int      `json:"nets"`
	Globals  []string `json:"globals,omitempty"`
	Version  uint64   `json:"version"`
	Resident bool     `json:"resident"`
	Snapshot bool     `json:"snapshot"`
}

func infoJSON(i store.Info) CircuitInfo {
	name := i.Display
	if name == "" {
		name = i.Name
	}
	return CircuitInfo{
		Key:      i.Name,
		Name:     name,
		Devices:  i.Devices,
		Nets:     i.Nets,
		Globals:  i.Globals,
		Version:  i.Version,
		Resident: i.Resident,
		Snapshot: i.Snapshot,
	}
}

// httpError pairs a client-visible message with a status code.
type httpError struct {
	status int
	msg    string
}

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *httpError) {
	writeJSON(w, e.status, map[string]string{"error": e.msg})
}

// decodeBody decodes a JSON request body, mapping oversized bodies to 413
// and malformed JSON to 400.
func decodeBody(r *http.Request, v any) *httpError {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return errf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		}
		return errf(http.StatusBadRequest, "invalid JSON body: %v", err)
	}
	return nil
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req MatchRequest
	if e := decodeBody(r, &req); e != nil {
		writeError(w, e)
		return
	}
	if req.Circuit == "" {
		req.Circuit = r.URL.Query().Get("circuit")
	}
	if req.SinceVersion == 0 {
		req.SinceVersion = sinceVersion(r)
	}
	resp, e := s.runMatch(r.Context(), &req)
	if e != nil {
		writeError(w, e)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.shedBulk(w, r, "batch") {
		return
	}
	var req BatchRequest
	if e := decodeBody(r, &req); e != nil {
		writeError(w, e)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, errf(http.StatusBadRequest, `batch has no "requests"`))
		return
	}
	// A body-level circuit selection (or, failing that, a query-level one)
	// applies to every item that does not pick its own.
	if req.Circuit == "" {
		req.Circuit = r.URL.Query().Get("circuit")
	}
	req.fillCircuits()
	writeJSON(w, http.StatusOK, s.runBatch(r.Context(), &req, true))
}

// runBatch fans the items of a batch across a bounded pool (parallel=true,
// the synchronous handler: each item still passes admission control
// individually, so a wide batch cannot starve single-match requests) or
// runs them sequentially (parallel=false, the job path: the job worker is
// the concurrency unit there).
func (s *Server) runBatch(ctx context.Context, req *BatchRequest, parallel bool) BatchResponse {
	results := make([]BatchItem, len(req.Requests))
	runOne := func(i int) {
		item := BatchItem{Index: i, Pattern: req.Requests[i].Pattern}
		resp, e := s.runMatch(ctx, &req.Requests[i])
		if e != nil {
			item.Status, item.Error = e.status, e.msg
		} else {
			item.Status, item.Match, item.Pattern = http.StatusOK, resp, resp.Pattern
		}
		results[i] = item
	}
	if !parallel {
		for i := range req.Requests {
			runOne(i)
		}
		return BatchResponse{Results: results}
	}
	pool := s.cfg.MaxConcurrent
	if pool > len(req.Requests) {
		pool = len(req.Requests)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for p := 0; p < pool; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := range req.Requests {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return BatchResponse{Results: results}
}

// acquireCircuit resolves a request's circuit selection to a store handle.
// An empty name means the default circuit, whose absence keeps the legacy
// 409 ("upload one") contract; a named circuit that does not exist is 404.
func (s *Server) acquireCircuit(name string) (*store.Handle, *httpError) {
	if name == "" {
		name = DefaultCircuit
	}
	h, err := s.store.Acquire(name)
	if err == nil {
		return h, nil
	}
	if errors.Is(err, store.ErrNotFound) {
		if name == DefaultCircuit {
			return nil, errf(http.StatusConflict,
				"no circuit loaded; upload one with POST /v1/circuit or PUT /v1/circuits/{name}")
		}
		return nil, errf(http.StatusNotFound, "no circuit named %q; see GET /v1/circuits", name)
	}
	return nil, errf(http.StatusInternalServerError, "acquiring circuit %q: %v", name, err)
}

// resolvePattern turns a request's pattern selection into a private clone
// (the matcher marks globals on it, so cached templates are never handed
// out directly).  Inline patterns are compiled into the cache and — when a
// data directory is configured — persisted so they survive restarts.
func (s *Server) resolvePattern(req *MatchRequest) (*graph.Circuit, bool, *httpError) {
	switch {
	case req.Netlist != "":
		pat, err := s.cache.compileNetlist(req.Netlist, req.Subckt, true)
		if err != nil {
			return nil, false, errf(http.StatusBadRequest, "pattern netlist: %v", err)
		}
		if tpl, ok := s.cache.template(pat.Name); ok {
			if err := s.store.SavePattern(pat.Name, tpl); err != nil {
				s.log.Warn("persisting pattern failed", "pattern", pat.Name, "err", err)
			}
		}
		return pat, false, nil
	case req.Pattern != "":
		pat, hit, err := s.cache.resolve(req.Pattern, true)
		if err != nil {
			return nil, false, errf(http.StatusNotFound, "%v", err)
		}
		return pat, hit, nil
	default:
		return nil, false, errf(http.StatusBadRequest, `request needs "pattern" (a cell name) or "netlist" (inline pattern source)`)
	}
}

// runMatch executes one synchronous match request end to end: validation,
// pattern resolution, admission, circuit acquisition, and the matching run
// under the entry read lock.
func (s *Server) runMatch(ctx context.Context, req *MatchRequest) (*MatchResponse, *httpError) {
	if e := validateMatch(req); e != nil {
		return nil, e
	}
	sc := obs.ScopeFromContext(ctx)
	ref := sc.Begin(obs.KindCacheLookup, "pattern")
	pat, cacheHit, e := s.resolvePattern(req)
	sc.End(ref)
	if e != nil {
		return nil, e
	}
	sc.Attr(ref, "pattern", pat.Name)
	if cacheHit {
		sc.Attr(ref, "hit", "true")
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Admission control: wait for a match slot, but not past the deadline.
	qRef := sc.Begin(obs.KindQueueWait, "match-slot")
	select {
	case s.sem <- struct{}{}:
		sc.End(qRef)
		defer func() { <-s.sem }()
	case <-ctx.Done():
		sc.End(qRef)
		obs.FromContext(ctx).SetCancelled()
		s.met.rejected.Add(1)
		return nil, errf(http.StatusServiceUnavailable,
			"server saturated: no match slot within %v (%d concurrent)", timeout, s.cfg.MaxConcurrent)
	}
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	gRef := sc.Begin(obs.KindStoreGet, req.Circuit)
	h, e := s.acquireCircuit(req.Circuit)
	sc.End(gRef)
	if e != nil {
		return nil, e
	}
	defer h.Release()
	sc.Attr(gRef, "circuit", h.Name())
	resp, err := s.executeMatch(ctx, req, pat, h)
	if err != nil {
		return nil, s.matchError(ctx, err, timeout)
	}
	resp.CacheHit = cacheHit
	return resp, nil
}

func validateMatch(req *MatchRequest) *httpError {
	if req.Workers > 1 && req.NonOverlap {
		return errf(http.StatusBadRequest, `"workers" > 1 requires overlap semantics; drop "nonoverlap"`)
	}
	if req.Workers > 1 && req.Max > 0 {
		return errf(http.StatusBadRequest, `"workers" > 1 cannot honor "max" deterministically; drop one of them`)
	}
	return nil
}

// matchError maps a matcher error to an HTTP status, marking the request's
// timeline cancelled on the two context-driven outcomes so the flight
// recorder always keeps those requests.
func (s *Server) matchError(ctx context.Context, err error, timeout time.Duration) *httpError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		obs.FromContext(ctx).SetCancelled()
		s.met.timeouts.Add(1)
		return errf(http.StatusGatewayTimeout, "match exceeded its %v deadline", timeout)
	case errors.Is(err, context.Canceled):
		obs.FromContext(ctx).SetCancelled()
		return errf(http.StatusServiceUnavailable, "request cancelled")
	default:
		return errf(http.StatusBadRequest, "match: %v", err)
	}
}

// executeMatch runs the match itself against an acquired circuit handle:
// global pre-marking under the entry lock, matcher construction sharing
// the entry's CSR view and scratch pool, and result conversion.  Both the
// synchronous path and job runners land here.
func (s *Server) executeMatch(ctx context.Context, req *MatchRequest, pat *graph.Circuit, h *store.Handle) (*MatchResponse, error) {
	// Request-level globals are marked on the private pattern clone; the
	// shared circuit gets its marks during lock acquisition below, so the
	// match itself never writes to shared state.
	for _, name := range req.Globals {
		pat.MarkGlobal(name)
	}
	names := append([]string(nil), req.Globals...)
	for _, n := range pat.Globals() {
		names = append(names, n.Name)
	}

	opts := core.Options{
		Bind:         req.Bind,
		MaxInstances: req.Max,
		Cancel:       s.cancelHook(ctx),
		Scratch:      h.Scratch(),
		CSR:          h.CSR(),
		Observe:      obs.ScopeFromContext(ctx),
	}
	if req.NonOverlap {
		opts.Policy = core.NonOverlapping
	}
	workers := req.Workers
	if workers > s.cfg.MaxWorkers {
		workers = s.cfg.MaxWorkers
	}
	// Phase I relabeling fan-out: the request's workers if set, else the
	// daemon default, both capped like the candidate fan-out.
	p1w := req.Workers
	if p1w <= 0 {
		p1w = s.cfg.Phase1Workers
	}
	if p1w > s.cfg.MaxWorkers {
		p1w = s.cfg.MaxWorkers
	}
	opts.Workers = p1w

	h.RLockWithGlobals(names)
	m, err := core.NewMatcher(h.Circuit(), opts)
	var res *core.Result
	var inc *IncrementalJSON
	if err == nil {
		switch {
		case workers > 1:
			// The candidate-parallel engine manages its own worklists; it
			// neither captures nor replays.
			res, err = m.FindParallel(pat, workers)
		case s.incEnabled():
			key := delta.PatternKey(pat, opts)
			lRef := opts.Observe.Begin(obs.KindCacheLookup, "result-cache")
			prev, ds, base := s.incLookup(h, key, req.SinceVersion)
			if prev != nil {
				opts.Observe.Attr(lRef, "hit", "true")
				opts.Observe.AttrInt(lRef, "base_version", int64(base))
			}
			opts.Observe.End(lRef)
			var next *core.IncrementalState
			res, next, err = m.FindIncremental(pat, prev, ds)
			if err == nil {
				s.rcache.Store(h.Name(), key, h.Version(), next)
				inc = &IncrementalJSON{
					Mode:       res.Report.IncrementalMode,
					Replayed:   res.Report.Replayed,
					Recomputed: res.Report.Recomputed,
				}
				if inc.Mode == "replay" {
					inc.BaseVersion = base
				}
			}
		default:
			res, err = m.Find(pat)
		}
	}
	h.RUnlock()
	if err != nil {
		return nil, err
	}
	s.met.observe(pat.Name, &res.Report)

	return &MatchResponse{
		Circuit:     h.Name(),
		Pattern:     pat.Name,
		Count:       len(res.Instances),
		Instances:   instancesJSON(res.Instances),
		Stats:       statsJSON(&res.Report),
		Version:     h.Version(),
		Incremental: inc,
	}, nil
}

// cancelHook adapts a request context to the matcher's cancellation hook,
// with the test instrumentation point folded in.
func (s *Server) cancelHook(ctx context.Context) func() error {
	if s.testCandidateHook == nil {
		return ctx.Err
	}
	return func() error {
		s.testCandidateHook()
		return ctx.Err()
	}
}

// parseCircuitBody reads and flattens a netlist request body.
func (s *Server) parseCircuitBody(r *http.Request, name string) (*graph.Circuit, *httpError) {
	src, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, errf(http.StatusRequestEntityTooLarge, "netlist exceeds %d bytes", tooBig.Limit)
		}
		return nil, errf(http.StatusBadRequest, "reading body: %v", err)
	}
	f, err := netlist.ParseString(string(src), name)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "parsing netlist: %v", err)
	}
	ckt, err := f.MainCircuit(name)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "building circuit: %v", err)
	}
	return ckt, nil
}

// putCircuit stores a parsed circuit under key, snapshotting it when a
// data directory is configured.
func (s *Server) putCircuit(ctx context.Context, key string, ckt *graph.Circuit) (store.Info, *httpError) {
	sc := obs.ScopeFromContext(ctx)
	ref := sc.Begin(obs.KindPersist, key)
	info, err := s.store.Put(key, ckt)
	sc.AttrInt(ref, "devices", int64(ckt.NumDevices()))
	sc.End(ref)
	if err != nil {
		if store.ValidName(key) {
			return store.Info{}, errf(http.StatusInternalServerError, "storing circuit %q: %v", key, err)
		}
		return store.Info{}, errf(http.StatusBadRequest, "%v", err)
	}
	// A replacement starts a fresh version lineage, so cached incremental
	// states cannot be carried forward (edits, by contrast, can — PATCH
	// never invalidates).
	if s.rcache != nil {
		s.rcache.Invalidate(key)
	}
	return info, nil
}

func (s *Server) handleCircuitPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("name")
	if !store.ValidName(key) {
		writeError(w, errf(http.StatusBadRequest,
			"invalid circuit name %q (want 1-64 chars of [A-Za-z0-9._-], not starting with '.' or '-')", key))
		return
	}
	display := r.URL.Query().Get("name")
	if display == "" {
		display = key
	}
	ckt, e := s.parseCircuitBody(r, display)
	if e != nil {
		writeError(w, e)
		return
	}
	info, e := s.putCircuit(r.Context(), key, ckt)
	if e != nil {
		writeError(w, e)
		return
	}
	writeJSON(w, http.StatusOK, infoJSON(info))
}

func (s *Server) handleCircuitGet(w http.ResponseWriter, r *http.Request) {
	info, ok := s.store.Get(r.PathValue("name"))
	if !ok {
		writeError(w, errf(http.StatusNotFound, "no circuit named %q", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, infoJSON(info))
}

func (s *Server) handleCircuitDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.store.Delete(name); err != nil {
		if errors.Is(err, store.ErrNotFound) {
			writeError(w, errf(http.StatusNotFound, "no circuit named %q", name))
		} else {
			writeError(w, errf(http.StatusInternalServerError, "deleting circuit %q: %v", name, err))
		}
		return
	}
	if s.rcache != nil {
		s.rcache.Invalidate(name)
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleCircuitList(w http.ResponseWriter, r *http.Request) {
	infos := s.store.List()
	out := make([]CircuitInfo, len(infos))
	for i, info := range infos {
		out[i] = infoJSON(info)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleLegacyCircuitUpload keeps the single-circuit API: the body becomes
// the default circuit (?name= names the circuit itself, not the store
// key).
func (s *Server) handleLegacyCircuitUpload(w http.ResponseWriter, r *http.Request) {
	display := r.URL.Query().Get("name")
	if display == "" {
		display = "circuit"
	}
	ckt, e := s.parseCircuitBody(r, display)
	if e != nil {
		writeError(w, e)
		return
	}
	info, e := s.putCircuit(r.Context(), DefaultCircuit, ckt)
	if e != nil {
		writeError(w, e)
		return
	}
	writeJSON(w, http.StatusOK, infoJSON(info))
}

func (s *Server) handleLegacyCircuitInfo(w http.ResponseWriter, r *http.Request) {
	info, ok := s.store.Get(DefaultCircuit)
	if !ok {
		writeError(w, errf(http.StatusNotFound, "no circuit loaded"))
		return
	}
	writeJSON(w, http.StatusOK, infoJSON(info))
}

func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.list())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	_, devices, nets := s.CircuitShape()
	queued, running := s.jobs.QueueDepth()
	ext := externalMetrics{
		cache:          s.cache.counters(),
		store:          s.store.Stats(),
		jobs:           s.jobs.Counters(),
		jobsQueued:     queued,
		jobsRunning:    running,
		circuitDevices: devices,
		circuitNets:    nets,
		ready:          s.notReady() == "",
		storeHealthy:   s.store.Healthy(),
		faultsArmed:    faults.Armed(),
		faultsFired:    faults.FiredTotal(),
		obsCounters:    s.rec.CountersSnapshot(),
	}
	if s.rcache != nil {
		ext.resultHits, ext.resultMisses, ext.resultInvalidations = s.rcache.Counters()
	}
	s.met.write(w, ext)
}
