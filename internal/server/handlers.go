package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"subgemini/internal/core"
	"subgemini/internal/graph"
	"subgemini/internal/netlist"
)

// MatchRequest is the body of POST /v1/match and each element of a batch.
// The pattern comes either from the cache/built-in library by name
// ("pattern") or inline as netlist source ("netlist" plus optional
// "subckt"); inline patterns are compiled into the cache under their
// .SUBCKT name so later requests can use the name alone.  The option
// fields mirror the subgemini CLI flags.
type MatchRequest struct {
	Pattern    string            `json:"pattern,omitempty"`
	Netlist    string            `json:"netlist,omitempty"`
	Subckt     string            `json:"subckt,omitempty"`
	Globals    []string          `json:"globals,omitempty"`
	Bind       map[string]string `json:"bind,omitempty"`
	NonOverlap bool              `json:"nonoverlap,omitempty"`
	Max        int               `json:"max,omitempty"`
	Workers    int               `json:"workers,omitempty"`
	TimeoutMS  int               `json:"timeout_ms,omitempty"`
}

// InstanceJSON is one verified embedding, as pattern-name → image-name maps.
type InstanceJSON struct {
	Devices map[string]string `json:"devices"`
	Nets    map[string]string `json:"nets"`
}

// StatsJSON is the per-run instrumentation subset exposed to clients.
type StatsJSON struct {
	Instances      int    `json:"instances"`
	MatchedDevices int    `json:"matched_devices"`
	CVSize         int    `json:"cv_size"`
	KeyVertex      string `json:"key_vertex,omitempty"`
	Candidates     int    `json:"candidates"`
	Phase1Passes   int    `json:"phase1_passes"`
	Phase2Passes   int    `json:"phase2_passes"`
	Guesses        int    `json:"guesses"`
	Backtracks     int    `json:"backtracks"`
	Phase1Micros   int64  `json:"phase1_us"`
	Phase2Micros   int64  `json:"phase2_us"`
}

// MatchResponse is the body of a successful POST /v1/match.
type MatchResponse struct {
	Pattern   string         `json:"pattern"`
	Count     int            `json:"count"`
	Instances []InstanceJSON `json:"instances"`
	Stats     StatsJSON      `json:"stats"`
	CacheHit  bool           `json:"cache_hit"`
}

// BatchRequest is the body of POST /v1/match/batch.
type BatchRequest struct {
	Requests []MatchRequest `json:"requests"`
}

// BatchItem is one per-pattern outcome of a batch; failed items carry an
// error and an HTTP-style status instead of a match.
type BatchItem struct {
	Index   int            `json:"index"`
	Pattern string         `json:"pattern,omitempty"`
	Status  int            `json:"status"`
	Error   string         `json:"error,omitempty"`
	Match   *MatchResponse `json:"match,omitempty"`
}

// BatchResponse is the body of a batch reply; the top-level status is 200
// whenever the batch itself was well-formed, with per-item outcomes inside.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// CircuitInfo describes the resident circuit.
type CircuitInfo struct {
	Name    string   `json:"name"`
	Devices int      `json:"devices"`
	Nets    int      `json:"nets"`
	Globals []string `json:"globals,omitempty"`
}

// httpError pairs a client-visible message with a status code.
type httpError struct {
	status int
	msg    string
}

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *httpError) {
	writeJSON(w, e.status, map[string]string{"error": e.msg})
}

// decodeBody decodes a JSON request body, mapping oversized bodies to 413
// and malformed JSON to 400.
func decodeBody(r *http.Request, v any) *httpError {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return errf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		}
		return errf(http.StatusBadRequest, "invalid JSON body: %v", err)
	}
	return nil
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req MatchRequest
	if e := decodeBody(r, &req); e != nil {
		writeError(w, e)
		return
	}
	resp, e := s.runMatch(r.Context(), &req)
	if e != nil {
		writeError(w, e)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if e := decodeBody(r, &req); e != nil {
		writeError(w, e)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, errf(http.StatusBadRequest, `batch has no "requests"`))
		return
	}
	results := make([]BatchItem, len(req.Requests))
	// Fan the items out across a bounded pool.  Each item still passes
	// through admission control individually, so a wide batch cannot
	// starve single-match requests; the pool here only bounds goroutines.
	pool := s.cfg.MaxConcurrent
	if pool > len(req.Requests) {
		pool = len(req.Requests)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for p := 0; p < pool; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				item := BatchItem{Index: i, Pattern: req.Requests[i].Pattern}
				resp, e := s.runMatch(r.Context(), &req.Requests[i])
				if e != nil {
					item.Status, item.Error = e.status, e.msg
				} else {
					item.Status, item.Match, item.Pattern = http.StatusOK, resp, resp.Pattern
				}
				results[i] = item
			}
		}()
	}
	for i := range req.Requests {
		idx <- i
	}
	close(idx)
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// runMatch executes one match request end to end: pattern resolution,
// validation, admission, global pre-marking, and the matching run under
// the circuit read lock.
func (s *Server) runMatch(ctx context.Context, req *MatchRequest) (*MatchResponse, *httpError) {
	if req.Workers > 1 && req.NonOverlap {
		return nil, errf(http.StatusBadRequest, `"workers" > 1 requires overlap semantics; drop "nonoverlap"`)
	}
	if req.Workers > 1 && req.Max > 0 {
		return nil, errf(http.StatusBadRequest, `"workers" > 1 cannot honor "max" deterministically; drop one of them`)
	}

	// Resolve the pattern to a private clone (the matcher marks globals on
	// it, so cached templates are never handed out directly).
	var pat *graph.Circuit
	var cacheHit bool
	switch {
	case req.Netlist != "":
		p, err := s.cache.compileNetlist(req.Netlist, req.Subckt, true)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "pattern netlist: %v", err)
		}
		pat = p
	case req.Pattern != "":
		p, hit, err := s.cache.resolve(req.Pattern, true)
		if err != nil {
			return nil, errf(http.StatusNotFound, "%v", err)
		}
		pat, cacheHit = p, hit
	default:
		return nil, errf(http.StatusBadRequest, `request needs "pattern" (a cell name) or "netlist" (inline pattern source)`)
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Admission control: wait for a match slot, but not past the deadline.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.met.rejected.Add(1)
		return nil, errf(http.StatusServiceUnavailable,
			"server saturated: no match slot within %v (%d concurrent)", timeout, s.cfg.MaxConcurrent)
	}
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	// Request-level globals are marked on the private pattern clone; the
	// shared circuit gets its marks during lock acquisition below, so the
	// match itself never writes to shared state.
	for _, name := range req.Globals {
		pat.MarkGlobal(name)
	}
	names := append([]string(nil), req.Globals...)
	for _, n := range pat.Globals() {
		names = append(names, n.Name)
	}

	opts := core.Options{
		Bind:         req.Bind,
		MaxInstances: req.Max,
		Cancel:       s.cancelHook(ctx),
		Scratch:      &s.scratch,
	}
	if req.NonOverlap {
		opts.Policy = core.NonOverlapping
	}
	workers := req.Workers
	if workers > s.cfg.MaxWorkers {
		workers = s.cfg.MaxWorkers
	}
	// Phase I relabeling fan-out: the request's workers if set, else the
	// daemon default, both capped like the candidate fan-out.
	p1w := req.Workers
	if p1w <= 0 {
		p1w = s.cfg.Phase1Workers
	}
	if p1w > s.cfg.MaxWorkers {
		p1w = s.cfg.MaxWorkers
	}
	opts.Workers = p1w

	ckt := s.lockCircuitWithGlobals(names)
	if ckt == nil {
		s.mu.RUnlock()
		return nil, errf(http.StatusConflict, "no circuit loaded; upload one with POST /v1/circuit")
	}
	// s.ckCSR is paired with s.circuit under the same lock we now hold;
	// the matcher still verifies the fit before adopting it.
	opts.CSR = s.ckCSR
	m, err := core.NewMatcher(ckt, opts)
	var res *core.Result
	if err == nil {
		if workers > 1 {
			res, err = m.FindParallel(pat, workers)
		} else {
			res, err = m.Find(pat)
		}
	}
	s.mu.RUnlock()
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.met.timeouts.Add(1)
			return nil, errf(http.StatusGatewayTimeout, "match exceeded its %v deadline", timeout)
		case errors.Is(err, context.Canceled):
			return nil, errf(http.StatusServiceUnavailable, "request cancelled")
		default:
			return nil, errf(http.StatusBadRequest, "match: %v", err)
		}
	}
	s.met.observe(pat.Name, &res.Report)

	resp := &MatchResponse{
		Pattern:   pat.Name,
		Count:     len(res.Instances),
		Instances: make([]InstanceJSON, 0, len(res.Instances)),
		CacheHit:  cacheHit,
		Stats: StatsJSON{
			Instances:      res.Report.Instances,
			MatchedDevices: res.Report.MatchedDevices,
			CVSize:         res.Report.CVSize,
			KeyVertex:      res.Report.KeyVertex,
			Candidates:     res.Report.Candidates,
			Phase1Passes:   res.Report.Phase1Passes,
			Phase2Passes:   res.Report.Phase2Passes,
			Guesses:        res.Report.Guesses,
			Backtracks:     res.Report.Backtracks,
			Phase1Micros:   res.Report.Phase1Duration.Microseconds(),
			Phase2Micros:   res.Report.Phase2Duration.Microseconds(),
		},
	}
	for _, inst := range res.Instances {
		ji := InstanceJSON{Devices: make(map[string]string), Nets: make(map[string]string)}
		for sd, gd := range inst.DevMap {
			ji.Devices[sd.Name] = gd.Name
		}
		for sn, gn := range inst.NetMap {
			ji.Nets[sn.Name] = gn.Name
		}
		resp.Instances = append(resp.Instances, ji)
	}
	return resp, nil
}

// cancelHook adapts a request context to the matcher's cancellation hook,
// with the test instrumentation point folded in.
func (s *Server) cancelHook(ctx context.Context) func() error {
	if s.testCandidateHook == nil {
		return ctx.Err
	}
	return func() error {
		s.testCandidateHook()
		return ctx.Err()
	}
}

func (s *Server) handleCircuitUpload(w http.ResponseWriter, r *http.Request) {
	src, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, errf(http.StatusRequestEntityTooLarge, "netlist exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, errf(http.StatusBadRequest, "reading body: %v", err))
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "circuit"
	}
	f, err := netlist.ParseString(string(src), name)
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "parsing netlist: %v", err))
		return
	}
	ckt, err := f.MainCircuit(name)
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "building circuit: %v", err))
		return
	}
	for _, g := range s.cfg.Globals {
		ckt.MarkGlobal(g)
	}
	// Flatten outside the lock (uploads are rare, matches are not), then
	// install circuit and CSR view as one unit.
	view := core.NewCSR(ckt)
	s.mu.Lock()
	s.circuit = ckt
	s.ckCSR = view
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, s.circuitInfo())
}

func (s *Server) handleCircuitInfo(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	loaded := s.circuit != nil
	s.mu.RUnlock()
	if !loaded {
		writeError(w, errf(http.StatusNotFound, "no circuit loaded"))
		return
	}
	writeJSON(w, http.StatusOK, s.circuitInfo())
}

func (s *Server) circuitInfo() CircuitInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info := CircuitInfo{
		Name:    s.circuit.Name,
		Devices: s.circuit.NumDevices(),
		Nets:    s.circuit.NumNets(),
	}
	for _, n := range s.circuit.Globals() {
		info.Globals = append(info.Globals, n.Name)
	}
	return info
}

func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.list())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.cache.counters()
	_, devices, nets := s.CircuitShape()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.met.write(w, hits, misses, size, devices, nets)
}
