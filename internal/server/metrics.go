package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"subgemini/internal/jobs"
	"subgemini/internal/obs"
	"subgemini/internal/stats"
	"subgemini/internal/store"
	"subgemini/internal/sweep"
)

// histBounds are the bucket upper bounds, in seconds, of the per-phase
// duration histograms: one decade per bucket from 10µs to 10s.  Phase I is
// linear in the main graph and Phase II in the matched devices, so a
// per-decade resolution separates "cheap pattern" from "pathological
// pattern" without a dependency on a metrics library.
var histBounds = [...]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// histogram is a fixed-bucket duration histogram with lock-free updates.
// Buckets store per-bucket counts; the Prometheus-style rendering
// accumulates them into the conventional cumulative le-labeled series.
type histogram struct {
	buckets [len(histBounds)]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	for i := range histBounds {
		if s <= histBounds[i] {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

func (h *histogram) write(w io.Writer, name string) {
	var cum int64
	for i := range histBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", histBounds[i]), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count.Load())
	fmt.Fprintf(w, "%s_sum %.6f\n", name, time.Duration(h.sumNS.Load()).Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// patternStats accumulates per-pattern candidate outcomes, the serving-side
// view of the algorithm's selectivity: how often Phase I's candidate vector
// sends Phase II after vertices that verify versus ones it rejects.
type patternStats struct {
	runs       int64
	candidates int64
	matched    int64
	instances  int64
}

// metrics aggregates the daemon's observable state: request accounting,
// an in-flight gauge, the summed per-run matcher reports, per-phase
// duration histograms, and per-pattern candidate-outcome counters.  The
// text rendering is Prometheus-style exposition ("name value" plus
// le/pattern-labeled series), so it is trivially scrapable without pulling
// in a metrics dependency.
type metrics struct {
	requests  atomic.Int64 // HTTP requests served (any route)
	errors    atomic.Int64 // responses with status >= 400
	timeouts  atomic.Int64 // match requests that hit their deadline
	rejected  atomic.Int64 // requests turned away by admission control
	inflight  atomic.Int64 // match runs currently executing
	matchRuns stats.Aggregate

	// Load-shedding counters, one per bulk endpoint (see shedBulk).
	shedBatch atomic.Int64
	shedSweep atomic.Int64
	shedJobs  atomic.Int64

	phase1 histogram // Phase I wall time per run
	phase2 histogram // Phase II wall time per run

	// Library-sweep accounting.  sweepRuns keys per-pattern totals by a
	// bounded label set (see sweepLabel): sweep libraries are user-defined,
	// so unlike the match-side patterns map the per-pattern series here
	// must not grow without bound.
	sweeps         atomic.Int64 // sweep invocations
	sweepPatterns  atomic.Int64 // patterns swept, deduplicated ones included
	sweepDeduped   atomic.Int64 // patterns answered from a structural twin's run
	sweepInstances atomic.Int64 // instances found across all sweep patterns
	sweepDur       histogram    // sweep wall time per invocation
	sweepRuns      stats.Aggregate

	mu          sync.Mutex
	patterns    map[string]*patternStats
	sweepLabels map[string]bool
}

// shed counts one turned-away bulk request under its endpoint label.
func (m *metrics) shed(endpoint string) {
	switch endpoint {
	case "batch":
		m.shedBatch.Add(1)
	case "sweep":
		m.shedSweep.Add(1)
	case "jobs":
		m.shedJobs.Add(1)
	}
}

// maxSweepPatternLabels caps the distinct pattern labels the sweep series
// may carry; patterns beyond the cap are lumped under "_other".
const maxSweepPatternLabels = 64

// sweepLabel maps a pattern name to its metric label, admitting new names
// until the cardinality cap and folding the rest into "_other".
func (m *metrics) sweepLabel(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sweepLabels[name] {
		return name
	}
	if len(m.sweepLabels) >= maxSweepPatternLabels {
		return "_other"
	}
	if m.sweepLabels == nil {
		m.sweepLabels = make(map[string]bool)
	}
	m.sweepLabels[name] = true
	return name
}

// observeSweep folds one finished library sweep into the sweep series.
// Deduplicated patterns share their representative's run, so only
// representatives feed the per-pattern aggregate — otherwise one run's
// work would be counted once per structural twin.
func (m *metrics) observeSweep(rep *sweep.Report) {
	m.sweeps.Add(1)
	m.sweepPatterns.Add(int64(len(rep.Results)))
	m.sweepDeduped.Add(int64(rep.Deduped))
	m.sweepInstances.Add(int64(rep.Instances()))
	m.sweepDur.observe(rep.Duration)
	for i := range rep.Results {
		pr := &rep.Results[i]
		if pr.Alias != "" {
			continue
		}
		m.sweepRuns.AddPattern(m.sweepLabel(pr.Name), &pr.Report)
	}
}

// observe folds one finished match run into every per-run series: the
// summed report aggregate, the phase-duration histograms, and the
// pattern-labeled outcome counters.
func (m *metrics) observe(pattern string, r *stats.Report) {
	m.matchRuns.Add(r)
	m.phase1.observe(r.Phase1Duration)
	m.phase2.observe(r.Phase2Duration)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.patterns == nil {
		m.patterns = make(map[string]*patternStats)
	}
	ps := m.patterns[pattern]
	if ps == nil {
		ps = &patternStats{}
		m.patterns[pattern] = ps
	}
	ps.runs++
	ps.candidates += int64(r.Candidates)
	ps.matched += int64(r.CandidatesMatched)
	ps.instances += int64(r.Instances)
}

// externalMetrics carries the state that lives outside the metrics struct
// — cache counters, store stats, job counters, and the default circuit's
// shape — into one write call.
type externalMetrics struct {
	cache          cacheCounters
	store          store.Stats
	jobs           jobs.Counters
	jobsQueued     int
	jobsRunning    int
	circuitDevices int
	circuitNets    int
	ready          bool // /readyz verdict at scrape time
	storeHealthy   bool // store.Healthy() at scrape time
	faultsArmed    int  // armed fault-injection points
	faultsFired    int64

	// Versioned result cache counters (delta.ResultCache; all zero when
	// the daemon runs with -noincremental).
	resultHits          uint64
	resultMisses        uint64
	resultInvalidations uint64

	// Flight-recorder counters (obs.Recorder.CountersSnapshot at scrape
	// time); the zero value renders every fixed label at 0.
	obsCounters obs.Counters
}

// b01 renders a boolean gauge.
func b01(v bool) int {
	if v {
		return 1
	}
	return 0
}

// write renders the metrics dump.
func (m *metrics) write(w io.Writer, ext externalMetrics) {
	snap := m.matchRuns.Snapshot()
	hits, misses := ext.cache.hits, ext.cache.misses
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "subgeminid_requests_total %d\n", m.requests.Load())
	fmt.Fprintf(w, "subgeminid_requests_errors_total %d\n", m.errors.Load())
	fmt.Fprintf(w, "subgeminid_requests_timeouts_total %d\n", m.timeouts.Load())
	fmt.Fprintf(w, "subgeminid_requests_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "subgeminid_shed_total{endpoint=\"batch\"} %d\n", m.shedBatch.Load())
	fmt.Fprintf(w, "subgeminid_shed_total{endpoint=\"jobs\"} %d\n", m.shedJobs.Load())
	fmt.Fprintf(w, "subgeminid_shed_total{endpoint=\"sweep\"} %d\n", m.shedSweep.Load())
	fmt.Fprintf(w, "subgeminid_ready %d\n", b01(ext.ready))
	fmt.Fprintf(w, "subgeminid_matches_inflight %d\n", m.inflight.Load())
	fmt.Fprintf(w, "subgeminid_match_runs_total %d\n", snap.Runs)
	fmt.Fprintf(w, "subgeminid_match_early_aborts_total %d\n", snap.EarlyAborts)
	fmt.Fprintf(w, "subgeminid_match_instances_total %d\n", snap.Sum.Instances)
	fmt.Fprintf(w, "subgeminid_match_matched_devices_total %d\n", snap.Sum.MatchedDevices)
	fmt.Fprintf(w, "subgeminid_match_candidates_total %d\n", snap.Sum.Candidates)
	fmt.Fprintf(w, "subgeminid_match_cv_entries_total %d\n", snap.Sum.CVSize)
	fmt.Fprintf(w, "subgeminid_match_phase1_passes_total %d\n", snap.Sum.Phase1Passes)
	fmt.Fprintf(w, "subgeminid_match_phase2_passes_total %d\n", snap.Sum.Phase2Passes)
	fmt.Fprintf(w, "subgeminid_match_guesses_total %d\n", snap.Sum.Guesses)
	fmt.Fprintf(w, "subgeminid_match_backtracks_total %d\n", snap.Sum.Backtracks)
	fmt.Fprintf(w, "subgeminid_match_verify_calls_total %d\n", snap.Sum.VerifyCalls)
	fmt.Fprintf(w, "subgeminid_match_phase1_seconds_total %.6f\n", snap.Sum.Phase1Duration.Seconds())
	fmt.Fprintf(w, "subgeminid_match_phase2_seconds_total %.6f\n", snap.Sum.Phase2Duration.Seconds())
	fmt.Fprintf(w, "subgeminid_match_region_vertices_total %d\n", snap.Sum.RegionBallSum)
	fmt.Fprintf(w, "subgeminid_match_region_max_size %d\n", snap.Sum.RegionMaxSize)
	fmt.Fprintf(w, "subgeminid_pattern_cache_size %d\n", ext.cache.size)
	fmt.Fprintf(w, "subgeminid_pattern_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "subgeminid_pattern_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "subgeminid_pattern_cache_evictions_total %d\n", ext.cache.evictions)
	fmt.Fprintf(w, "subgeminid_pattern_cache_hit_rate %.4f\n", hitRate)
	fmt.Fprintf(w, "subgeminid_store_circuits %d\n", ext.store.Circuits)
	fmt.Fprintf(w, "subgeminid_store_resident %d\n", ext.store.Resident)
	fmt.Fprintf(w, "subgeminid_store_resident_bytes %d\n", ext.store.ResidentBytes)
	fmt.Fprintf(w, "subgeminid_store_evictions_total %d\n", ext.store.Evictions)
	fmt.Fprintf(w, "subgeminid_store_reloads_total %d\n", ext.store.Reloads)
	fmt.Fprintf(w, "subgeminid_store_healthy %d\n", b01(ext.storeHealthy))
	fmt.Fprintf(w, "subgeminid_delta_edits_total %d\n", ext.store.Edits)
	fmt.Fprintf(w, "subgeminid_csr_rebuilds_total %d\n", ext.store.CSRRebuilds)
	fmt.Fprintf(w, "subgeminid_result_cache_hits_total %d\n", ext.resultHits)
	fmt.Fprintf(w, "subgeminid_result_cache_misses_total %d\n", ext.resultMisses)
	fmt.Fprintf(w, "subgeminid_result_cache_invalidations_total %d\n", ext.resultInvalidations)
	fmt.Fprintf(w, "subgeminid_jobs_submitted_total %d\n", ext.jobs.Submitted)
	fmt.Fprintf(w, "subgeminid_jobs_done_total %d\n", ext.jobs.Done)
	fmt.Fprintf(w, "subgeminid_jobs_failed_total %d\n", ext.jobs.Failed)
	fmt.Fprintf(w, "subgeminid_jobs_cancelled_total %d\n", ext.jobs.Cancelled)
	fmt.Fprintf(w, "subgeminid_jobs_recovered_total %d\n", ext.jobs.Recovered)
	fmt.Fprintf(w, "subgeminid_jobs_persist_retries_total %d\n", ext.jobs.PersistRetries)
	fmt.Fprintf(w, "subgeminid_jobs_queued %d\n", ext.jobsQueued)
	fmt.Fprintf(w, "subgeminid_jobs_running %d\n", ext.jobsRunning)
	fmt.Fprintf(w, "subgeminid_circuit_devices %d\n", ext.circuitDevices)
	fmt.Fprintf(w, "subgeminid_circuit_nets %d\n", ext.circuitNets)
	fmt.Fprintf(w, "subgeminid_sweeps_total %d\n", m.sweeps.Load())
	fmt.Fprintf(w, "subgeminid_sweep_patterns_total %d\n", m.sweepPatterns.Load())
	fmt.Fprintf(w, "subgeminid_sweep_deduped_total %d\n", m.sweepDeduped.Load())
	fmt.Fprintf(w, "subgeminid_sweep_instances_total %d\n", m.sweepInstances.Load())
	fmt.Fprintf(w, "subgeminid_faults_armed %d\n", ext.faultsArmed)
	fmt.Fprintf(w, "subgeminid_faults_fired_total %d\n", ext.faultsFired)
	fmt.Fprintf(w, "subgeminid_slow_requests_total %d\n", ext.obsCounters.Slow)
	// Span-kind and keep-reason label sets are fixed, so every series renders
	// (at zero if never hit) and dashboards can rely on their presence.
	for _, kind := range obs.SpanKinds {
		fmt.Fprintf(w, "subgeminid_request_spans_total{kind=%q} %d\n", kind, ext.obsCounters.Spans[kind])
	}
	for _, reason := range obs.KeepReasons {
		fmt.Fprintf(w, "subgeminid_flight_recorder_kept_total{reason=%q} %d\n", reason, ext.obsCounters.Kept[reason])
	}
	m.phase1.write(w, "subgeminid_match_phase1_seconds")
	m.phase2.write(w, "subgeminid_match_phase2_seconds")
	m.sweepDur.write(w, "subgeminid_sweep_seconds")
	m.writePatterns(w)
	m.writeSweepPatterns(w)
}

// writePatterns renders the pattern-labeled counters in sorted order so the
// dump is deterministic.  The failed series is derived (candidates that did
// not verify) because that difference — how many Phase II attempts the
// candidate vector wastes — is the number worth alerting on.
func (m *metrics) writePatterns(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.patterns))
	for name := range m.patterns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ps := m.patterns[name]
		fmt.Fprintf(w, "subgeminid_pattern_runs_total{pattern=%q} %d\n", name, ps.runs)
		fmt.Fprintf(w, "subgeminid_pattern_candidates_total{pattern=%q} %d\n", name, ps.candidates)
		fmt.Fprintf(w, "subgeminid_pattern_candidates_matched_total{pattern=%q} %d\n", name, ps.matched)
		fmt.Fprintf(w, "subgeminid_pattern_candidates_failed_total{pattern=%q} %d\n", name, ps.candidates-ps.matched)
		fmt.Fprintf(w, "subgeminid_pattern_instances_total{pattern=%q} %d\n", name, ps.instances)
	}
}

// writeSweepPatterns renders the bounded pattern-labeled sweep series; the
// stats.Aggregate pattern dimension keeps attribution even though sweep
// reports from many patterns merge into one stream.
func (m *metrics) writeSweepPatterns(w io.Writer) {
	for _, ps := range m.sweepRuns.Patterns() {
		fmt.Fprintf(w, "subgeminid_sweep_pattern_runs_total{pattern=%q} %d\n", ps.Pattern, ps.Runs)
		fmt.Fprintf(w, "subgeminid_sweep_pattern_early_aborts_total{pattern=%q} %d\n", ps.Pattern, ps.EarlyAborts)
		fmt.Fprintf(w, "subgeminid_sweep_pattern_candidates_total{pattern=%q} %d\n", ps.Pattern, ps.Sum.Candidates)
		fmt.Fprintf(w, "subgeminid_sweep_pattern_pruned_total{pattern=%q} %d\n", ps.Pattern, ps.Sum.Phase1Pruned)
		fmt.Fprintf(w, "subgeminid_sweep_pattern_instances_total{pattern=%q} %d\n", ps.Pattern, ps.Sum.Instances)
	}
}
