package server

import (
	"fmt"
	"io"
	"sync/atomic"

	"subgemini/internal/stats"
)

// metrics aggregates the daemon's observable state: request accounting,
// an in-flight gauge, and the summed per-run matcher reports.  The text
// rendering is a flat "name value" dump, one metric per line, so it is
// trivially scrapable without pulling in a metrics dependency.
type metrics struct {
	requests  atomic.Int64 // HTTP requests served (any route)
	errors    atomic.Int64 // responses with status >= 400
	timeouts  atomic.Int64 // match requests that hit their deadline
	rejected  atomic.Int64 // requests turned away by admission control
	inflight  atomic.Int64 // match runs currently executing
	matchRuns stats.Aggregate
}

// write renders the metrics dump.  The cache counters and circuit shape are
// passed in because they live on the server, not the metrics struct.
func (m *metrics) write(w io.Writer, hits, misses int64, cacheSize int, circuitDevices, circuitNets int) {
	snap := m.matchRuns.Snapshot()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "subgeminid_requests_total %d\n", m.requests.Load())
	fmt.Fprintf(w, "subgeminid_requests_errors_total %d\n", m.errors.Load())
	fmt.Fprintf(w, "subgeminid_requests_timeouts_total %d\n", m.timeouts.Load())
	fmt.Fprintf(w, "subgeminid_requests_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "subgeminid_matches_inflight %d\n", m.inflight.Load())
	fmt.Fprintf(w, "subgeminid_match_runs_total %d\n", snap.Runs)
	fmt.Fprintf(w, "subgeminid_match_early_aborts_total %d\n", snap.EarlyAborts)
	fmt.Fprintf(w, "subgeminid_match_instances_total %d\n", snap.Sum.Instances)
	fmt.Fprintf(w, "subgeminid_match_matched_devices_total %d\n", snap.Sum.MatchedDevices)
	fmt.Fprintf(w, "subgeminid_match_candidates_total %d\n", snap.Sum.Candidates)
	fmt.Fprintf(w, "subgeminid_match_cv_entries_total %d\n", snap.Sum.CVSize)
	fmt.Fprintf(w, "subgeminid_match_phase1_passes_total %d\n", snap.Sum.Phase1Passes)
	fmt.Fprintf(w, "subgeminid_match_phase2_passes_total %d\n", snap.Sum.Phase2Passes)
	fmt.Fprintf(w, "subgeminid_match_guesses_total %d\n", snap.Sum.Guesses)
	fmt.Fprintf(w, "subgeminid_match_backtracks_total %d\n", snap.Sum.Backtracks)
	fmt.Fprintf(w, "subgeminid_match_verify_calls_total %d\n", snap.Sum.VerifyCalls)
	fmt.Fprintf(w, "subgeminid_match_phase1_seconds_total %.6f\n", snap.Sum.Phase1Duration.Seconds())
	fmt.Fprintf(w, "subgeminid_match_phase2_seconds_total %.6f\n", snap.Sum.Phase2Duration.Seconds())
	fmt.Fprintf(w, "subgeminid_pattern_cache_size %d\n", cacheSize)
	fmt.Fprintf(w, "subgeminid_pattern_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "subgeminid_pattern_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "subgeminid_pattern_cache_hit_rate %.4f\n", hitRate)
	fmt.Fprintf(w, "subgeminid_circuit_devices %d\n", circuitDevices)
	fmt.Fprintf(w, "subgeminid_circuit_nets %d\n", circuitNets)
}
