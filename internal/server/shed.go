package server

// Priority load shedding and readiness.  The daemon's overload posture is
// asymmetric on purpose: a single synchronous match is the latency-
// sensitive interactive operation, while batches, sweeps, and async job
// submissions are bulk work that amplifies both memory and queue depth.
// When either configured budget is exceeded, the bulk endpoints answer
// 429 with a Retry-After hint and the match path keeps its admission
// semaphore to itself.

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"subgemini/internal/obs"
)

// memSamplePeriod bounds how often shedding re-reads runtime.MemStats.
// ReadMemStats stops the world briefly; under overload — exactly when
// shedBulk runs hottest — an uncached read per request would add its own
// load.  Heap growth on the timescale of a shedding decision is far
// coarser than this period.
const memSamplePeriod = 50 * time.Millisecond

// memSampler caches the Go heap-in-use reading between periodic refreshes.
// The zero value is ready; the first call samples immediately.
type memSampler struct {
	lastNS atomic.Int64
	heap   atomic.Uint64
}

// heapInUse returns the cached HeapAlloc, refreshing it at most once per
// memSamplePeriod.  The CompareAndSwap elects one refresher under
// concurrency; losers return the (at worst one period old) cached value.
func (ms *memSampler) heapInUse() uint64 {
	now := time.Now().UnixNano()
	last := ms.lastNS.Load()
	if now-last >= int64(memSamplePeriod) && ms.lastNS.CompareAndSwap(last, now) {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		ms.heap.Store(m.HeapAlloc)
	}
	return ms.heap.Load()
}

// shedBulk decides whether a bulk endpoint must be turned away right now,
// and if so writes the structured 429 itself and returns true.  endpoint
// is the metrics label ("batch", "sweep", or "jobs").
func (s *Server) shedBulk(w http.ResponseWriter, r *http.Request, endpoint string) bool {
	sc := obs.ScopeFromContext(r.Context())
	ref := sc.Begin(obs.KindShedCheck, endpoint)
	reason := ""
	if n := s.cfg.ShedInflight; n > 0 {
		if in := s.met.inflight.Load(); in >= int64(n) {
			reason = fmt.Sprintf("%d match runs in flight (budget %d)", in, n)
		}
	}
	if reason == "" && s.cfg.ShedMemoryBytes > 0 {
		if heap := s.mem.heapInUse(); heap >= uint64(s.cfg.ShedMemoryBytes) {
			reason = fmt.Sprintf("heap in use %d bytes (budget %d)", heap, s.cfg.ShedMemoryBytes)
		}
	}
	if reason == "" {
		sc.End(ref)
		return false
	}
	sc.Attr(ref, "shed", reason)
	sc.End(ref)
	s.met.shed(endpoint)
	retry := int(s.cfg.RetryAfter / time.Second)
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":         fmt.Sprintf("%s shed under load: %s; single POST /v1/match stays available", endpoint, reason),
		"shed":          true,
		"retry_after_s": retry,
	})
	return true
}

// SetDraining flips the shutdown signal /readyz reports.  The daemon sets
// it right before the HTTP listener starts its graceful drain, so load
// balancers pull the instance while in-flight requests finish.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// notReady returns why the daemon should not receive new traffic, or ""
// when it should.  Liveness (/healthz) is intentionally separate: a
// draining or store-degraded daemon is alive and must not be restarted,
// just unrouted.
func (s *Server) notReady() string {
	if s.draining.Load() {
		return "draining: shutdown in progress"
	}
	if !s.store.Healthy() {
		return "store: last persistence operation failed"
	}
	return ""
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if reason := s.notReady(); reason != "" {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready:", reason)
		return
	}
	fmt.Fprintln(w, "ready")
}
