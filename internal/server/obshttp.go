package server

// Request telemetry surface: request-ID minting, the finish hook that feeds
// the tail-sampling flight recorder, the /debug/requests endpoints that
// expose it, and the job-runner wrapper that extends one request's ID into
// the async job it spawned.  The timelines themselves are built by
// internal/obs; handlers hang spans off the context-carried timeline.

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"subgemini/internal/jobs"
	"subgemini/internal/obs"
)

// mintRequestID returns the request's telemetry ID: a sanitized inbound
// X-Request-Id when the caller supplied one (so IDs propagate across
// services), otherwise boot-nonce + sequence.
func (s *Server) mintRequestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get("X-Request-Id")); id != "" {
		return id
	}
	return fmt.Sprintf("%s-%06d", s.ridBoot, s.ridSeq.Add(1))
}

// sanitizeRequestID accepts 1-64 chars of [A-Za-z0-9._-]; anything else
// (including header injection attempts) is discarded and re-minted.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// finishRequest seals a timeline with the response status, hands it to the
// flight recorder, and emits the slow-request log line (top-3 spans inline)
// when the request crossed the threshold.
func (s *Server) finishRequest(tl *obs.Timeline, status int) {
	if status == 0 {
		status = http.StatusOK
	}
	tl.Finish(status)
	reason, slow := s.rec.Observe(tl)
	if slow {
		js := tl.JSON()
		s.log.Warn("slow request",
			"request_id", js.RequestID,
			"scope", js.Scope,
			"method", js.Method,
			"path", js.Path,
			"status", js.Status,
			"duration_ms", js.DurationUS/1000,
			"kept", reason,
			"top_spans", inlineSpans(tl.TopSpans(3)))
	}
}

// inlineSpans renders spans as "kind=dur kind=dur" for one-line log output.
func inlineSpans(spans []obs.SpanJSON) string {
	var b strings.Builder
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sp.Kind)
		b.WriteByte('=')
		b.WriteString((time.Duration(sp.DurUS) * time.Microsecond).String())
	}
	return b.String()
}

// handleDebugRequests lists the flight recorder's kept timelines, newest
// first.  Filters: ?outcome= (shed, cancel, error, slow, sampled), ?path=
// (substring), ?min_ms= (minimum total duration), ?limit= (default 50).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := obs.Filter{
		Outcome: q.Get("outcome"),
		Path:    q.Get("path"),
	}
	if v, err := strconv.Atoi(q.Get("min_ms")); err == nil && v > 0 {
		f.MinDur = time.Duration(v) * time.Millisecond
	}
	if v, err := strconv.Atoi(q.Get("limit")); err == nil && v > 0 {
		f.Limit = v
	}
	list := s.rec.List(f)
	writeJSON(w, http.StatusOK, map[string]any{
		"count":    len(list),
		"requests": list,
	})
}

// handleDebugRequestByID returns every kept timeline carrying the request
// ID — the HTTP request and any job it spawned share one ID and both
// appear, oldest first.
func (s *Server) handleDebugRequestByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tls := s.rec.Find(id)
	if len(tls) == 0 {
		writeError(w, errf(http.StatusNotFound,
			"no recorded timeline for request id %q (the flight recorder tail-samples; errors, sheds, and slow requests are always kept)", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"request_id": id,
		"timelines":  tls,
	})
}

// observeJobRunner wraps a job runner so the job's execution gets its own
// timeline under the submitting request's ID: a queue-wait span covers
// submit-to-start, the runner's context carries the timeline (so
// executeMatch and the sweep engine hang their spans off it), and the
// finished timeline lands in the same flight recorder keyed by the same
// request ID the submit response returned.
func (s *Server) observeJobRunner(kind, requestID string, fn jobs.Runner) jobs.Runner {
	tl := obs.NewTimeline(requestID, "job:"+kind, "JOB", "/v1/jobs")
	qRef := tl.Begin(obs.NoSpan, obs.KindQueueWait, kind)
	return func(ctx context.Context) (any, error) {
		tl.End(qRef)
		res, err := fn(obs.NewContext(ctx, tl))
		status := http.StatusOK
		switch {
		case err == nil:
		case ctx.Err() != nil:
			tl.SetCancelled()
			status = http.StatusServiceUnavailable
		default:
			status = http.StatusInternalServerError
		}
		s.finishRequest(tl, status)
		return res, err
	}
}
