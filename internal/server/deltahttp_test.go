package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"subgemini/internal/delta"
	"subgemini/internal/gen"
	"subgemini/internal/store"
)

// rewireOps is a benign single-op PATCH body: move a device's pin 0 onto
// the named net (created if absent).
func rewireOps(dev, net string) PatchRequest {
	return PatchRequest{Ops: []delta.Op{{Op: delta.OpRewirePin, Device: dev, Pin: 0, Net: net}}}
}

func TestPatchAndVersionsEndpoints(t *testing.T) {
	s := mustNew(t, Config{Globals: rails})
	if rec := do(t, s, "PUT", "/v1/circuits/chip", nandNetlist); rec.Code != http.StatusOK {
		t.Fatalf("put: status %d: %s", rec.Code, rec.Body.String())
	}

	rec := do(t, s, "PATCH", "/v1/circuits/chip", rewireOps("MN3", "spare"))
	if rec.Code != http.StatusOK {
		t.Fatalf("patch: status %d: %s", rec.Code, rec.Body.String())
	}
	var pr PatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Circuit.Version != 2 || pr.Applied != 1 {
		t.Errorf("patch response: version=%d applied=%d", pr.Circuit.Version, pr.Applied)
	}

	rec = do(t, s, "GET", "/v1/circuits/chip/versions", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("versions: status %d: %s", rec.Code, rec.Body.String())
	}
	var vl store.VersionLog
	if err := json.Unmarshal(rec.Body.Bytes(), &vl); err != nil {
		t.Fatal(err)
	}
	if vl.Version != 2 || len(vl.Steps) != 1 || vl.Steps[0].Version != 2 {
		t.Errorf("version log: %+v", vl)
	}

	// Failure modes: invalid op (unknown device), empty batch, unknown
	// circuit.  None may move the version.
	if rec := do(t, s, "PATCH", "/v1/circuits/chip", rewireOps("nope", "x")); rec.Code != http.StatusBadRequest {
		t.Errorf("invalid op: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "PATCH", "/v1/circuits/chip", PatchRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty ops: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "PATCH", "/v1/circuits/ghost", rewireOps("MN3", "x")); rec.Code != http.StatusNotFound {
		t.Errorf("unknown circuit: status %d, want 404", rec.Code)
	}
	if rec := do(t, s, "GET", "/v1/circuits/ghost/versions", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown versions: status %d, want 404", rec.Code)
	}
	var info CircuitInfo
	rec = do(t, s, "GET", "/v1/circuits/chip", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Errorf("version after failed patches = %d, want 2", info.Version)
	}
}

// TestMatchIncrementalReplay drives the whole match-side cache cycle over
// HTTP: cold run captures, warm run replays, an edit narrows the replay to
// the blast radius, and a since_version floor past the capture forces a
// full run whose instances the replayed run must equal exactly.
func TestMatchIncrementalReplay(t *testing.T) {
	d := gen.RippleAdder(6)
	s := mustNew(t, Config{Circuit: d.C, Globals: rails})

	cold := decodeMatch(t, do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"}))
	if cold.Incremental == nil || cold.Incremental.Mode != "full" {
		t.Fatalf("cold run incremental = %+v, want mode full", cold.Incremental)
	}
	if cold.Version != 1 {
		t.Errorf("cold version = %d, want 1", cold.Version)
	}

	warm := decodeMatch(t, do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"}))
	if warm.Incremental == nil || warm.Incremental.Mode != "replay" {
		t.Fatalf("warm run incremental = %+v, want mode replay", warm.Incremental)
	}
	if warm.Incremental.Replayed == 0 || warm.Incremental.Recomputed != 0 {
		t.Errorf("unchanged-circuit replay: %+v, want all candidates replayed", warm.Incremental)
	}
	if warm.Incremental.BaseVersion != 1 {
		t.Errorf("warm base version = %d, want 1", warm.Incremental.BaseVersion)
	}
	if warm.Count != cold.Count {
		t.Errorf("replay count %d != cold count %d", warm.Count, cold.Count)
	}

	// Edit one device, then match both ways: replaying across the edit and
	// fully (since_version past every capture) — bit-identical instances.
	dev := d.C.Devices[0].Name
	if rec := do(t, s, "PATCH", "/v1/circuits/default", rewireOps(dev, "eco1")); rec.Code != http.StatusOK {
		t.Fatalf("patch: status %d: %s", rec.Code, rec.Body.String())
	}
	replayed := decodeMatch(t, do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"}))
	if replayed.Incremental == nil || replayed.Incremental.Mode != "replay" {
		t.Fatalf("post-edit incremental = %+v, want mode replay", replayed.Incremental)
	}
	if replayed.Incremental.Replayed == 0 {
		t.Error("post-edit run replayed nothing; blast radius machinery inert")
	}
	if replayed.Version != 2 {
		t.Errorf("post-edit version = %d, want 2", replayed.Version)
	}
	full := decodeMatch(t, do(t, s, "POST", "/v1/match?since_version=99", MatchRequest{Pattern: "FA"}))
	if full.Incremental == nil || full.Incremental.Mode != "full" {
		t.Fatalf("floored incremental = %+v, want mode full", full.Incremental)
	}
	a, _ := json.Marshal(replayed.Instances)
	b, _ := json.Marshal(full.Instances)
	if string(a) != string(b) {
		t.Errorf("replayed instances differ from full run\nreplay: %s\nfull:   %s", a, b)
	}

	// The cache cycle shows up in the metrics dump.
	met := parseMetrics(t, do(t, s, "GET", "/metrics", nil).Body.String())
	if met["subgeminid_delta_edits_total"] != 1 {
		t.Errorf("delta edits metric = %v, want 1", met["subgeminid_delta_edits_total"])
	}
	if met["subgeminid_result_cache_hits_total"] == 0 {
		t.Error("result cache hits metric is zero")
	}
}

// TestMatchIncrementalDisabled pins the -noincremental escape hatch: no
// incremental section in responses and the incremental-sweep job kind is
// refused at submit time.
func TestMatchIncrementalDisabled(t *testing.T) {
	s, want := newAdderServer(t, func(c *Config) { c.DisableIncremental = true })
	resp := decodeMatch(t, do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"}))
	if resp.Incremental != nil {
		t.Errorf("disabled daemon reported incremental: %+v", resp.Incremental)
	}
	if resp.Count != want {
		t.Errorf("count = %d, want %d", resp.Count, want)
	}
	rec := do(t, s, "POST", "/v1/jobs", JobRequest{
		Kind:  "incremental-sweep",
		Sweep: &SweepRequest{Patterns: []string{"FA"}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("incremental-sweep on disabled daemon: status %d, want 400", rec.Code)
	}
}

// TestSweepIncrementalHTTP exercises the sweep-side cache: a warm sweep
// replays, a PATCH narrows it, and the incremental-sweep job kind replays
// while the plain sweep job kind never consults the cache.
func TestSweepIncrementalHTTP(t *testing.T) {
	d := gen.RippleAdder(6)
	s := mustNew(t, Config{Circuit: d.C, Globals: rails})
	sweepReq := SweepRequest{Patterns: []string{"FA", "INV", "NAND2"}}

	var cold, warm SweepResponse
	rec := do(t, s, "POST", "/v1/sweep", sweepReq)
	if rec.Code != http.StatusOK {
		t.Fatalf("cold sweep: status %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Replayed != 0 || cold.Version != 1 {
		t.Errorf("cold sweep: replayed=%d version=%d", cold.Replayed, cold.Version)
	}

	if rec := do(t, s, "PATCH", "/v1/circuits/default", rewireOps(d.C.Devices[0].Name, "eco1")); rec.Code != http.StatusOK {
		t.Fatalf("patch: status %d: %s", rec.Code, rec.Body.String())
	}
	rec = do(t, s, "POST", "/v1/sweep", sweepReq)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm sweep: status %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Replayed == 0 {
		t.Error("warm sweep replayed nothing")
	}
	if warm.Version != 2 {
		t.Errorf("warm sweep version = %d, want 2", warm.Version)
	}
	// The edit may legitimately change per-pattern counts vs the cold
	// sweep; what must agree is warm vs a full sweep of the same version.
	var full SweepResponse
	rec = do(t, s, "POST", "/v1/sweep?since_version=99", sweepReq)
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	for i := range warm.Results {
		if warm.Results[i].Count != full.Results[i].Count {
			t.Errorf("%s: warm count %d != full count %d",
				warm.Results[i].Pattern, warm.Results[i].Count, full.Results[i].Count)
		}
	}

	// Job kinds: "incremental-sweep" replays from the now-warm cache, plain
	// "sweep" never consults it.
	view := waitJob(t, s, submitJob(t, s, JobRequest{Kind: "incremental-sweep", Sweep: &sweepReq}).ID)
	if view.State != "done" {
		t.Fatalf("incremental-sweep job: %s (%s)", view.State, view.Error)
	}
	var jobResp SweepResponse
	if err := json.Unmarshal(view.Result, &jobResp); err != nil {
		t.Fatal(err)
	}
	if jobResp.Replayed == 0 {
		t.Error("incremental-sweep job replayed nothing")
	}
	view = waitJob(t, s, submitJob(t, s, JobRequest{Kind: "sweep", Sweep: &sweepReq}).ID)
	if view.State != "done" {
		t.Fatalf("sweep job: %s (%s)", view.State, view.Error)
	}
	var plainResp SweepResponse
	if err := json.Unmarshal(view.Result, &plainResp); err != nil {
		t.Fatal(err)
	}
	if plainResp.Replayed != 0 {
		t.Errorf("plain sweep job replayed %d candidates; must not consult the cache", plainResp.Replayed)
	}
}

// TestConcurrentPatchVsMatch hammers POST /v1/match while PATCHes land.
// Under -race this pins HTTP-level snapshot isolation: every match sees one
// consistent circuit version and never errors.
func TestConcurrentPatchVsMatch(t *testing.T) {
	d := gen.NandMesh(5, 6)
	s := mustNew(t, Config{Circuit: d.C, Globals: rails})
	dev := d.C.Devices[0].Name

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "NAND2"})
				if rec.Code != http.StatusOK {
					t.Errorf("match: status %d: %s", rec.Code, rec.Body.String())
					return
				}
				if resp := decodeMatch(t, rec); resp.Count == 0 {
					t.Error("match found nothing mid-edit")
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		rec := do(t, s, "PATCH", "/v1/circuits/default", rewireOps(dev, fmt.Sprintf("cc%d", i)))
		if rec.Code != http.StatusOK {
			t.Fatalf("patch %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	close(stop)
	wg.Wait()

	var info CircuitInfo
	if err := json.Unmarshal(do(t, s, "GET", "/v1/circuits/default", nil).Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 21 {
		t.Errorf("final version = %d, want 21", info.Version)
	}
}
