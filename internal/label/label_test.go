package label

import (
	"testing"
	"testing/quick"

	"subgemini/internal/graph"
)

func TestHashersDeterministicAndDistinct(t *testing.T) {
	if TypeLabel("nmos") != TypeLabel("nmos") {
		t.Error("TypeLabel not deterministic")
	}
	if TypeLabel("nmos") == TypeLabel("pmos") {
		t.Error("TypeLabel collides on nmos/pmos")
	}
	if DegreeLabel(2) == DegreeLabel(3) {
		t.Error("DegreeLabel collides on 2/3")
	}
	if GlobalLabel("VDD") == GlobalLabel("GND") {
		t.Error("GlobalLabel collides on VDD/GND")
	}
	// Domain separation: a type named "3" must not collide with degree 3.
	if TypeLabel("3") == DegreeLabel(3) {
		t.Error("domain separation failed between type and degree labels")
	}
	if TypeLabel("VDD") == GlobalLabel("VDD") {
		t.Error("domain separation failed between type and global labels")
	}
}

func TestLabelsNeverZero(t *testing.T) {
	if err := quick.Check(func(s string, d int, c uint8) bool {
		if d < 0 {
			d = -d
		}
		return TypeLabel(s) != 0 && DegreeLabel(d) != 0 && GlobalLabel(s) != 0 &&
			ClassMul(graph.TermClass(c)) != 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestClassMulOdd(t *testing.T) {
	for c := 0; c < 256; c++ {
		if ClassMul(graph.TermClass(c))%2 == 0 {
			t.Fatalf("ClassMul(%d) is even; multiplication would not be a bijection mod 2^64", c)
		}
	}
	if ClassMul(graph.ClassDS) == ClassMul(graph.ClassGate) {
		t.Error("source/drain and gate classes share a multiplier")
	}
}

func TestUniqueSource(t *testing.T) {
	u := NewUniqueSource(1)
	seen := make(map[Value]bool)
	for i := 0; i < 100000; i++ {
		v := u.Next()
		if v == 0 {
			t.Fatal("UniqueSource produced the reserved zero label")
		}
		if seen[v] {
			t.Fatalf("UniqueSource repeated a label after %d draws", i)
		}
		seen[v] = true
	}
	// Same seed reproduces the same stream; different seeds diverge.
	a, b, c := NewUniqueSource(7), NewUniqueSource(7), NewUniqueSource(8)
	if a.Next() != b.Next() {
		t.Error("equal seeds produced different streams")
	}
	if a.Next() == c.Next() {
		t.Error("different seeds produced the same second draw")
	}
}

func TestCombineUsesClassAndNeighbor(t *testing.T) {
	base := Value(17)
	n1, n2 := TypeLabel("nmos"), TypeLabel("pmos")
	if Combine(base, graph.ClassDS, n1) == Combine(base, graph.ClassGate, n1) {
		t.Error("Combine ignores the terminal class")
	}
	if Combine(base, graph.ClassDS, n1) == Combine(base, graph.ClassDS, n2) {
		t.Error("Combine ignores the neighbor label")
	}
	// Commutativity within one class: the relabeling function must not
	// depend on neighbor enumeration order.
	x := Combine(Combine(base, graph.ClassDS, n1), graph.ClassDS, n2)
	y := Combine(Combine(base, graph.ClassDS, n2), graph.ClassDS, n1)
	if x != y {
		t.Error("Combine is order-dependent within a class")
	}
}
