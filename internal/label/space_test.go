package label

import (
	"testing"

	"subgemini/internal/graph"
)

func TestSpace(t *testing.T) {
	c := graph.New("t")
	a, b := c.AddNet("a"), c.AddNet("b")
	cls := []graph.TermClass{0, 0}
	d1 := c.MustAddDevice("d1", "res", cls, []*graph.Net{a, b})
	d2 := c.MustAddDevice("d2", "cap", cls, []*graph.Net{a, b})

	sp := NewSpace(c)
	if sp.Size() != 4 || sp.NumDevices() != 2 {
		t.Fatalf("Size=%d NumDevices=%d, want 4, 2", sp.Size(), sp.NumDevices())
	}
	if sp.Circuit() != c {
		t.Error("Circuit() does not return the underlying circuit")
	}
	for _, d := range []*graph.Device{d1, d2} {
		v := sp.DevVID(d)
		if !sp.IsDevice(v) || sp.Device(v) != d || sp.Name(v) != d.Name {
			t.Errorf("device round-trip failed for %s", d.Name)
		}
	}
	for _, n := range []*graph.Net{a, b} {
		v := sp.NetVID(n)
		if sp.IsDevice(v) || sp.Net(v) != n || sp.Name(v) != n.Name {
			t.Errorf("net round-trip failed for %s", n.Name)
		}
	}
	// VIDs must be dense and disjoint.
	seen := map[VID]bool{}
	for _, v := range []VID{sp.DevVID(d1), sp.DevVID(d2), sp.NetVID(a), sp.NetVID(b)} {
		if v < 0 || int(v) >= sp.Size() || seen[v] {
			t.Fatalf("VID %d not dense/unique", v)
		}
		seen[v] = true
	}
}
