// Package label provides the labeling primitives shared by SubGemini's two
// phases and by the Gemini graph-isomorphism checker.
//
// Partitioning is done implicitly via labeling (paper §II): vertices with
// equal labels are in the same partition, and partitions are refined by
// relabeling each vertex from its old label plus the labels of its
// neighbors, weighted by the terminal class of the connection (Fig. 3):
//
//	new(v) = old(v) + Σ_{u ∈ N(v)} classMul(class(v,u)) · label(u)
//
// Labels are 64-bit integers that approximate exact partition-refinement
// labels; as in the paper, collisions are possible but vanishingly rare, and
// the matcher remains sound because every reported mapping is verified
// edge-by-edge afterwards.
package label

import "subgemini/internal/graph"

// Value is a vertex label.  Zero is reserved to mean "no information yet"
// (used by Phase II before labels have spread to a vertex); all hashing
// helpers avoid returning zero.
type Value uint64

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap bijective
// mixer with excellent avalanche behaviour, used to derive all label
// constants deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nonzero maps 0 to an arbitrary fixed value so label constants never
// collide with the reserved "unlabeled" value.
func nonzero(x uint64) Value {
	if x == 0 {
		return Value(0x1b873593_cc9e2d51)
	}
	return Value(x)
}

// hashBytes hashes a byte string through splitmix64 with per-position
// mixing.  It is not a cryptographic hash; it only needs to spread distinct
// short names across 64 bits.
func hashBytes(domain uint64, s string) Value {
	h := splitmix64(domain)
	for i := 0; i < len(s); i++ {
		h = splitmix64(h ^ uint64(s[i])<<1)
	}
	return nonzero(h)
}

// Domain separators keep the different label families disjoint even for
// equal underlying inputs (e.g. a device type named "3" vs a net of
// degree 3).
const (
	domType   = 0x5347_0001
	domDegree = 0x5347_0002
	domGlobal = 0x5347_0003
	domClass  = 0x5347_0004
	domUnique = 0x5347_0005
	domBind   = 0x5347_0006
)

// TypeLabel returns the initial Phase-I label of a device vertex: a hash of
// its type name (paper §III: "all device vertices are labeled according to
// their type").
func TypeLabel(typ string) Value { return hashBytes(domType, typ) }

// DegreeLabel returns the initial Phase-I label of a net vertex: a hash of
// its degree (paper §III: "all net vertices are labeled according to their
// degree").
func DegreeLabel(degree int) Value {
	return nonzero(splitmix64(domDegree ^ uint64(degree)*0x100000001b3))
}

// GlobalLabel returns the fixed label of a special-signal net (paper §V.A).
// Globals are matched by name, so the label depends only on the name and is
// identical in the pattern and the main graph.
func GlobalLabel(name string) Value { return hashBytes(domGlobal, name) }

// BindLabel returns the fixed label of a bound pattern port and of its
// main-graph target net.  The label depends only on the target name, so
// the pattern side and the main-graph side agree by construction.
func BindLabel(target string) Value { return hashBytes(domBind, target) }

// ClassMul returns the multiplier applied to a neighbor's label for a
// connection through the given terminal class (the s and g constants of
// Fig. 3).  The result is forced odd so multiplication is a bijection
// modulo 2^64.
func ClassMul(class graph.TermClass) uint64 {
	return splitmix64(domClass+uint64(class)*0x9e3779b9) | 1
}

// UniqueSource hands out a deterministic stream of unique labels, used for
// the "random, unique label" the paper assigns to matched vertex pairs in
// Phase II.  Determinism (rather than true randomness) makes runs
// reproducible; uniqueness within a run is what the algorithm needs.
type UniqueSource struct {
	seed uint64
	ctr  uint64
}

// NewUniqueSource returns a source seeded deterministically.
func NewUniqueSource(seed uint64) *UniqueSource {
	return &UniqueSource{seed: splitmix64(domUnique ^ seed)}
}

// Next returns the next unique label.
func (u *UniqueSource) Next() Value {
	u.ctr++
	return nonzero(splitmix64(u.seed + u.ctr*0x9e3779b97f4a7c15))
}

// Draws returns how many labels have been drawn from the source.  The
// incremental matcher records per-candidate draw counts so a replayed
// candidate can advance the stream without recomputing the labels.
func (u *UniqueSource) Draws() uint64 { return u.ctr }

// Skip advances the stream past n draws without materializing them.  The
// stream is a pure counter, so skipping is exact: Skip(n) leaves the source
// in the same state as n calls to Next.
func (u *UniqueSource) Skip(n uint64) { u.ctr += n }

// Combine folds one weighted neighbor label into an accumulating label, per
// the Fig. 3 relabeling function.
func Combine(acc Value, class graph.TermClass, neighbor Value) Value {
	return acc + Value(ClassMul(class)*uint64(neighbor))
}
