package label

import "subgemini/internal/graph"

// VID identifies a vertex (device or net) of one circuit in a single dense
// integer space: devices occupy [0, NumDevices) and nets occupy
// [NumDevices, NumDevices+NumNets).  Dense ids let the phase algorithms use
// flat slices instead of maps for labels, validity bits, and match state.
type VID int

// Space maps between (device|net, index) pairs and dense VIDs for one
// circuit.  A Space is immutable once created; create a new one if the
// circuit's vertex sets change.
type Space struct {
	c       *graph.Circuit
	numDevs int
}

// NewSpace returns the vertex space of c.
func NewSpace(c *graph.Circuit) *Space {
	return &Space{c: c, numDevs: c.NumDevices()}
}

// Circuit returns the underlying circuit.
func (s *Space) Circuit() *graph.Circuit { return s.c }

// Size returns the total number of vertices.
func (s *Space) Size() int { return s.numDevs + s.c.NumNets() }

// NumDevices returns the number of device vertices.
func (s *Space) NumDevices() int { return s.numDevs }

// DevVID returns the VID of a device.
func (s *Space) DevVID(d *graph.Device) VID { return VID(d.Index) }

// NetVID returns the VID of a net.
func (s *Space) NetVID(n *graph.Net) VID { return VID(s.numDevs + n.Index) }

// IsDevice reports whether v identifies a device vertex.
func (s *Space) IsDevice(v VID) bool { return int(v) < s.numDevs }

// Device returns the device identified by v; v must be a device VID.
func (s *Space) Device(v VID) *graph.Device { return s.c.Devices[v] }

// Net returns the net identified by v; v must be a net VID.
func (s *Space) Net(v VID) *graph.Net { return s.c.Nets[int(v)-s.numDevs] }

// Name returns a human-readable name for v, for diagnostics.
func (s *Space) Name(v VID) string {
	if s.IsDevice(v) {
		return s.Device(v).Name
	}
	return s.Net(v).Name
}
