// Package baseline implements a straightforward depth-first subgraph
// matcher of the kind SubGemini §IV contrasts itself with ("matching all
// the vertices of S to vertices located in G by exhaustively searching from
// the key vertex as in [6] ... can be very expensive").  It enumerates
// embeddings device by device with backtracking, pruning only on device
// type, terminal classes, net-degree feasibility, and injectivity.
//
// The package serves two purposes: it is the evaluation baseline for the
// benchmark harness (experiment E6), and — because it is simple enough to
// trust — it cross-checks the SubGemini core on small circuits in tests.
package baseline

import (
	"fmt"
	"sort"

	"subgemini/internal/core"
	"subgemini/internal/graph"
)

// Options configures a baseline run.
type Options struct {
	// Globals lists special-signal net names, with the same semantics as
	// core.Options.Globals.
	Globals []string
	// MaxInstances stops the search after this many distinct instances
	// (0 = no limit).
	MaxInstances int
	// Plain disables the net-degree feasibility pruning, leaving only
	// type, terminal-class, and injectivity constraints during the search;
	// degree conditions are then checked on complete embeddings only.
	// This models the reference [6]-style exhaustive search the paper
	// contrasts SubGemini with — a "wrong guess early on" is discovered
	// arbitrarily late.  The default (false) is a modern pruned DFS.
	Plain bool
	// MaxSteps aborts the search after this many device-assignment
	// attempts (0 = no limit).  Used by benchmarks to bound Plain runs.
	MaxSteps int
}

// Result is the outcome of a baseline search: the distinct instances found
// (distinct by image device set, so pattern automorphisms do not duplicate)
// and how many embeddings were enumerated to find them.
type Result struct {
	Instances  []*core.Instance
	Embeddings int
	// Steps counts device-assignment attempts, the search-effort measure.
	Steps int
	// Aborted reports that MaxSteps was hit before the search finished.
	Aborted bool
}

type matcher struct {
	g, s   *graph.Circuit
	opts   Options
	order  []*graph.Device // pattern devices in BFS order
	devMap []*graph.Device // pattern device index -> image
	netMap []*graph.Net    // pattern net index -> image
	usedD  []bool          // main-graph device already an image
	usedN  []bool          // main-graph net already an image
	seen   map[string]bool
	res    *Result
	done   bool
}

// Find enumerates instances of pattern s in circuit g.  As in the core
// matcher, the effective special signals are the union of opts.Globals and
// the globals already marked in either circuit, applied to both by name.
func Find(g, s *graph.Circuit, opts Options) (*Result, error) {
	for _, name := range opts.Globals {
		g.MarkGlobal(name)
		s.MarkGlobal(name)
	}
	for _, n := range g.Globals() {
		s.MarkGlobal(n.Name)
	}
	for _, n := range s.Globals() {
		g.MarkGlobal(n.Name)
	}
	if s.NumDevices() == 0 {
		return nil, fmt.Errorf("baseline: pattern %s has no devices", s.Name)
	}
	m := &matcher{
		g: g, s: s, opts: opts,
		devMap: make([]*graph.Device, s.NumDevices()),
		netMap: make([]*graph.Net, s.NumNets()),
		usedD:  make([]bool, g.NumDevices()),
		usedN:  make([]bool, g.NumNets()),
		seen:   make(map[string]bool),
		res:    &Result{},
	}
	// Pre-map globals by name; a missing global means no instance.
	for _, n := range s.Nets {
		if !n.Global {
			continue
		}
		gn := g.NetByName(n.Name)
		if gn == nil || !gn.Global {
			return m.res, nil
		}
		m.netMap[n.Index] = gn
	}
	m.order = bfsOrder(s)
	m.assign(0)
	return m.res, nil
}

// bfsOrder orders pattern devices so each (after the first) shares a net
// with an earlier one, keeping the candidate sets small.  Global nets do
// not count as shared structure, matching the connectivity rule of the
// core matcher.
func bfsOrder(s *graph.Circuit) []*graph.Device {
	order := make([]*graph.Device, 0, s.NumDevices())
	inOrder := make([]bool, s.NumDevices())
	netSeen := make([]bool, s.NumNets())
	var queue []*graph.Device
	push := func(d *graph.Device) {
		if !inOrder[d.Index] {
			inOrder[d.Index] = true
			queue = append(queue, d)
		}
	}
	push(s.Devices[0])
	for len(queue) > 0 || len(order) < s.NumDevices() {
		if len(queue) == 0 {
			// Disconnected pattern (only possible through globals): start a
			// new component.
			for _, d := range s.Devices {
				if !inOrder[d.Index] {
					push(d)
					break
				}
			}
		}
		d := queue[0]
		queue = queue[1:]
		order = append(order, d)
		for _, pin := range d.Pins {
			if pin.Net.Global || netSeen[pin.Net.Index] {
				continue
			}
			netSeen[pin.Net.Index] = true
			for _, conn := range pin.Net.Conns {
				push(conn.Dev)
			}
		}
	}
	return order
}

// assign tries every image for the i'th pattern device in the BFS order.
func (m *matcher) assign(i int) {
	if m.done {
		return
	}
	if i == len(m.order) {
		m.record()
		return
	}
	sd := m.order[i]
	for _, cand := range m.candidates(sd) {
		if m.usedD[cand.Index] || cand.Type != sd.Type || len(cand.Pins) != len(sd.Pins) {
			continue
		}
		m.res.Steps++
		if m.opts.MaxSteps > 0 && m.res.Steps > m.opts.MaxSteps {
			m.res.Aborted = true
			m.done = true
			return
		}
		m.usedD[cand.Index] = true
		m.devMap[sd.Index] = cand
		m.tryPins(sd, cand, 0, func() { m.assign(i + 1) })
		m.devMap[sd.Index] = nil
		m.usedD[cand.Index] = false
		if m.done {
			return
		}
	}
}

// candidates returns plausible images for sd: if any of sd's nets is
// already mapped, the devices on the image net; otherwise every main-graph
// device.
func (m *matcher) candidates(sd *graph.Device) []*graph.Device {
	for _, pin := range sd.Pins {
		img := m.netMap[pin.Net.Index]
		if img == nil || pin.Net.Global {
			continue
		}
		cands := make([]*graph.Device, 0, img.Degree())
		for _, conn := range img.Conns {
			cands = append(cands, conn.Dev)
		}
		return cands
	}
	return m.g.Devices
}

// tryPins matches sd's pins to gd's pins one by one, extending the net map,
// then calls next; it undoes its work on return.  Pins must pair within
// equal terminal classes; pins of one class are tried in every order
// (source/drain interchange).
func (m *matcher) tryPins(sd, gd *graph.Device, pi int, next func()) {
	m.tryPinsUsed(sd, gd, pi, make([]bool, len(gd.Pins)), next)
}

func (m *matcher) tryPinsUsed(sd, gd *graph.Device, pi int, usedGPin []bool, next func()) {
	if m.done {
		return
	}
	if pi == len(sd.Pins) {
		next()
		return
	}
	sPin := sd.Pins[pi]
	for j, gPin := range gd.Pins {
		if usedGPin[j] || gPin.Class != sPin.Class {
			continue
		}
		if !m.netConsistent(sPin.Net, gPin.Net) {
			continue
		}
		mapped := false
		if !sPin.Net.Global && m.netMap[sPin.Net.Index] == nil {
			m.netMap[sPin.Net.Index] = gPin.Net
			m.usedN[gPin.Net.Index] = true
			mapped = true
		}
		usedGPin[j] = true
		m.tryPinsUsed(sd, gd, pi+1, usedGPin, next)
		usedGPin[j] = false
		if mapped {
			m.usedN[gPin.Net.Index] = false
			m.netMap[sPin.Net.Index] = nil
		}
		if m.done {
			return
		}
	}
}

// netConsistent checks whether mapping pattern net sn to main-graph net gn
// is (still) possible.
func (m *matcher) netConsistent(sn, gn *graph.Net) bool {
	if img := m.netMap[sn.Index]; img != nil {
		return img == gn
	}
	// sn unmapped: gn must be fresh and non-global.
	if m.usedN[gn.Index] || gn.Global {
		return false
	}
	if m.opts.Plain {
		return true // degree conditions deferred to complete embeddings
	}
	if sn.Port {
		return gn.Degree() >= sn.Degree()
	}
	return gn.Degree() == sn.Degree()
}

// degreesOK re-checks the degree conditions on a complete embedding; only
// needed in Plain mode, where netConsistent defers them.
func (m *matcher) degreesOK() bool {
	for _, sn := range m.s.Nets {
		if sn.Global {
			continue
		}
		gn := m.netMap[sn.Index]
		if gn == nil {
			return false
		}
		if sn.Port {
			if gn.Degree() < sn.Degree() {
				return false
			}
		} else if gn.Degree() != sn.Degree() {
			return false
		}
	}
	return true
}

// record handles one complete embedding: de-duplicate by device set, check
// induced-ness of internal nets (degree equality was already enforced when
// the net was mapped), and store the instance.
func (m *matcher) record() {
	m.res.Embeddings++
	if m.opts.Plain && !m.degreesOK() {
		return
	}
	sig := m.signature()
	if m.seen[sig] {
		return
	}
	m.seen[sig] = true
	inst := &core.Instance{
		DevMap: make(map[*graph.Device]*graph.Device, len(m.devMap)),
		NetMap: make(map[*graph.Net]*graph.Net, len(m.netMap)),
	}
	for _, sd := range m.s.Devices {
		inst.DevMap[sd] = m.devMap[sd.Index]
	}
	for _, sn := range m.s.Nets {
		inst.NetMap[sn] = m.netMap[sn.Index]
	}
	m.res.Instances = append(m.res.Instances, inst)
	if m.opts.MaxInstances > 0 && len(m.res.Instances) >= m.opts.MaxInstances {
		m.done = true
	}
}

func (m *matcher) signature() string {
	idx := make([]int, 0, len(m.devMap))
	for _, gd := range m.devMap {
		idx = append(idx, gd.Index)
	}
	sort.Ints(idx)
	sig := make([]byte, 0, len(idx)*4)
	for _, x := range idx {
		sig = append(sig, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return string(sig)
}
