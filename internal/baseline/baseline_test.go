package baseline_test

import (
	"subgemini/internal/baseline"
	"testing"

	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

var rails = []string{"VDD", "GND"}

func TestFindInverters(t *testing.T) {
	d := gen.InverterChain(5)
	res, err := baseline.Find(d.C, stdcell.INV.Pattern(), baseline.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 5 {
		t.Fatalf("found %d inverters, want 5", len(res.Instances))
	}
	if res.Embeddings < 5 {
		t.Errorf("embeddings = %d, want >= 5", res.Embeddings)
	}
}

// TestAutomorphicPatternDedupes: a NAND2 has an A/B input swap
// automorphism, so the matcher enumerates two embeddings per instance but
// must report one.
func TestAutomorphicPatternDedupes(t *testing.T) {
	g := graph.New("one")
	nets := map[string]*graph.Net{}
	for _, n := range []string{"A", "B", "Y", "VDD", "GND"} {
		nets[n] = g.AddNet(n)
	}
	stdcell.NAND2.MustInstantiate(g, "u1", nets)
	res, err := baseline.Find(g, stdcell.NAND2.Pattern(), baseline.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d instances, want 1", len(res.Instances))
	}
	// The pull-up pair is symmetric but the series pull-down orders A
	// before B, so the full-cell automorphism count is 1; XOR2 below has a
	// true A/B automorphism.
	p := graph.New("pair")
	x, y, ga, gb := p.AddNet("X"), p.AddNet("Y"), p.AddNet("GA"), p.AddNet("GB")
	cls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	p.MustAddDevice("MA", "nmos", cls, []*graph.Net{x, ga, y})
	p.MustAddDevice("MB", "nmos", cls, []*graph.Net{x, gb, y})
	for _, port := range []string{"X", "Y", "GA", "GB"} {
		if err := p.MarkPort(port); err != nil {
			t.Fatal(err)
		}
	}
	g2 := graph.New("pairg")
	x2, y2, a2, b2 := g2.AddNet("X"), g2.AddNet("Y"), g2.AddNet("GA"), g2.AddNet("GB")
	g2.MustAddDevice("MA", "nmos", cls, []*graph.Net{x2, a2, y2})
	g2.MustAddDevice("MB", "nmos", cls, []*graph.Net{x2, b2, y2})
	res, err = baseline.Find(g2, p, baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Errorf("symmetric pair: %d instances, want 1", len(res.Instances))
	}
	if res.Embeddings < 2 {
		t.Errorf("symmetric pair: %d embeddings, want >= 2 (automorphism)", res.Embeddings)
	}
}

func TestMaxInstances(t *testing.T) {
	d := gen.InverterChain(10)
	res, err := baseline.Find(d.C, stdcell.INV.Pattern(), baseline.Options{Globals: rails, MaxInstances: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 3 {
		t.Errorf("found %d instances, want 3 (capped)", len(res.Instances))
	}
}

func TestFig7Baseline(t *testing.T) {
	build := func() *graph.Circuit {
		g := graph.New("nand")
		nets := map[string]*graph.Net{}
		for _, n := range []string{"A", "B", "Y", "VDD", "GND"} {
			nets[n] = g.AddNet(n)
		}
		stdcell.NAND2.MustInstantiate(g, "u1", nets)
		return g
	}
	res, err := baseline.Find(build(), stdcell.INV.Pattern(), baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Errorf("without globals: %d instances, want 1", len(res.Instances))
	}
	res, err = baseline.Find(build(), stdcell.INV.Pattern(), baseline.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 0 {
		t.Errorf("with globals: %d instances, want 0", len(res.Instances))
	}
}

func TestMissingGlobalMeansNoMatch(t *testing.T) {
	g := graph.New("empty")
	a, b, gnd := g.AddNet("a"), g.AddNet("b"), g.AddNet("GND")
	cls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	g.MustAddDevice("m", "nmos", cls, []*graph.Net{a, b, gnd})
	// Pattern references VDD, which the circuit lacks entirely.
	res, err := baseline.Find(g, stdcell.INV.Pattern(), baseline.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 0 {
		t.Errorf("found %d instances, want 0", len(res.Instances))
	}
}

func TestEmptyPatternRejected(t *testing.T) {
	if _, err := baseline.Find(graph.New("g"), graph.New("s"), baseline.Options{}); err == nil {
		t.Error("empty pattern accepted")
	}
}

// TestPlainMode: with degree pruning disabled the matcher enumerates more
// embeddings but reports identical instances, and the step counter and
// budget work.
func TestPlainMode(t *testing.T) {
	d := gen.SwitchGrid(4, 4)
	pruned, err := baseline.Find(d.C.Clone(), gen.PassChainPattern(4), baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := baseline.Find(d.C.Clone(), gen.PassChainPattern(4), baseline.Options{Plain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Instances) != len(pruned.Instances) {
		t.Errorf("plain found %d, pruned %d", len(plain.Instances), len(pruned.Instances))
	}
	if plain.Steps <= pruned.Steps {
		t.Errorf("plain steps %d <= pruned steps %d; degree pruning had no effect", plain.Steps, pruned.Steps)
	}
	// A tiny budget aborts the plain search.
	capped, err := baseline.Find(d.C.Clone(), gen.PassChainPattern(4), baseline.Options{Plain: true, MaxSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Aborted {
		t.Error("step budget not honored")
	}
}

// TestDisconnectedPatternViaGlobals: baseline handles patterns whose
// components touch only at global nets (the core matcher rejects them; the
// DFS restarts BFS per component).
func TestDisconnectedPatternViaGlobals(t *testing.T) {
	s := graph.New("twoinv")
	vdd, gnd := s.AddNet("VDD"), s.AddNet("GND")
	cls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	for _, sfx := range []string{"1", "2"} {
		a, y := s.AddNet("a"+sfx), s.AddNet("y"+sfx)
		s.MustAddDevice("mp"+sfx, "pmos", cls, []*graph.Net{y, a, vdd})
		s.MustAddDevice("mn"+sfx, "nmos", cls, []*graph.Net{y, a, gnd})
	}
	for _, p := range []string{"a1", "y1", "a2", "y2"} {
		if err := s.MarkPort(p); err != nil {
			t.Fatal(err)
		}
	}
	g := gen.InverterChain(4)
	res, err := baseline.Find(g.C, s, baseline.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	// Net maps are injective, so adjacent chain inverters (which share a
	// net) cannot form a pair: only the C(4,2) − 3 = 3 non-adjacent pairs
	// qualify.
	if len(res.Instances) != 3 {
		t.Errorf("found %d inverter pairs, want 3", len(res.Instances))
	}
}
