// Clock domains: use port binding to partition the flip-flops of a design
// by the clock that drives them — the "further constraints on the
// subcircuit" generalization of special signals the paper describes in
// §V.A, applied to a practical question ("which registers are on phi2?").
//
// Run with:  go run ./examples/clockdomains
package main

import (
	"fmt"
	"log"

	"subgemini"
)

func main() {
	ckt := build()
	fmt.Println("circuit:", ckt)

	dff := subgemini.Cell("DFF")
	rails := []string{"VDD", "GND"}

	res, err := subgemini.Find(ckt, dff.Pattern(), subgemini.Options{Globals: rails})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal flip-flops: %d\n", len(res.Instances))

	for _, clock := range []string{"phi1", "phi2"} {
		res, err := subgemini.Find(ckt, dff.Pattern(), subgemini.Options{
			Globals: rails,
			Bind:    map[string]string{"CLK": clock},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("domain %s: %d flip-flop(s)\n", clock, len(res.Instances))
		for _, inst := range res.Instances {
			first := inst.Devices()[0]
			fmt.Printf("   %s...\n", first.Name)
		}
	}

	// Cross-domain transfers: flip-flops on phi2 whose D input is another
	// register's output — candidates for synchronizer review.  Binding
	// narrows both ports at once.
	res, err = subgemini.Find(ckt, dff.Pattern(), subgemini.Options{
		Globals: rails,
		Bind:    map[string]string{"CLK": "phi2", "D": "q1"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphi2 flip-flops sampling q1 (domain crossing): %d\n", len(res.Instances))
}

// build makes a small two-phase design: two registers on phi1 feeding one
// register on phi2, plus an unrelated phi2 register.
func build() *subgemini.Circuit {
	c := subgemini.New("twophase")
	vdd, gnd := c.AddNet("VDD"), c.AddNet("GND")
	phi1, phi2 := c.AddNet("phi1"), c.AddNet("phi2")
	dff := subgemini.Cell("DFF")

	place := func(inst string, d, clk, q *subgemini.Net) {
		dff.MustInstantiate(c, inst, map[string]*subgemini.Net{
			"D": d, "CLK": clk, "Q": q, "VDD": vdd, "GND": gnd,
		})
	}
	d0, q0 := c.AddNet("d0"), c.AddNet("q0")
	d1, q1 := c.AddNet("d1"), c.AddNet("q1")
	q2 := c.AddNet("q2")
	d3, q3 := c.AddNet("d3"), c.AddNet("q3")
	place("ra", d0, phi1, q0)
	place("rb", d1, phi1, q1)
	place("sync", q1, phi2, q2) // crosses from phi1 into phi2
	place("rc", d3, phi2, q3)
	return c
}
