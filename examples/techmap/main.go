// Technology mapping: find all possible coverings of a gate-level network
// by library components — the §I application that tree-covering mappers
// cannot handle on graphs with reconvergent fanout, but a general subgraph
// matcher can.
//
// The circuit here is gate-level, not transistor-level: the "devices" are
// NAND2 and INV gates.  SubGemini is technology-independent, so matching
// works unchanged on any typed device graph.
//
// Run with:  go run ./examples/techmap
package main

import (
	"fmt"
	"log"

	"subgemini"
)

// Gate-level terminal classes: inputs of a NAND are interchangeable (class
// 0); the output is its own class (1).
var (
	nandClasses = []subgemini.TermClass{0, 0, 1}
	invClasses  = []subgemini.TermClass{0, 1}
)

// and2Pattern is the composite AND2 = NAND2 + INV with the intermediate
// net internal: an AND2 covering is only valid where nothing else taps the
// NAND output.
func and2Pattern() *subgemini.Circuit {
	p := subgemini.New("AND2MAP")
	a, b, m, y := p.AddNet("A"), p.AddNet("B"), p.AddNet("m"), p.AddNet("Y")
	p.MustAddDevice("g1", "nand2", nandClasses, []*subgemini.Net{a, b, m})
	p.MustAddDevice("g2", "inv", invClasses, []*subgemini.Net{m, y})
	for _, port := range []string{"A", "B", "Y"} {
		if err := p.MarkPort(port); err != nil {
			panic(err)
		}
	}
	return p
}

func main() {
	// y1 = AND(a,b) — coverable.
	// t  = NAND(c,d) with fanout to BOTH an inverter and another NAND:
	//      the inverter pair is NOT coverable as AND2 because t escapes.
	c := subgemini.New("netlist")
	a, b, cc, d := c.AddNet("a"), c.AddNet("b"), c.AddNet("c"), c.AddNet("d")
	n1, y1 := c.AddNet("n1"), c.AddNet("y1")
	t, y2, y3 := c.AddNet("t"), c.AddNet("y2"), c.AddNet("y3")
	c.MustAddDevice("u1", "nand2", nandClasses, []*subgemini.Net{a, b, n1})
	c.MustAddDevice("u2", "inv", invClasses, []*subgemini.Net{n1, y1})
	c.MustAddDevice("u3", "nand2", nandClasses, []*subgemini.Net{cc, d, t})
	c.MustAddDevice("u4", "inv", invClasses, []*subgemini.Net{t, y2})
	c.MustAddDevice("u5", "nand2", nandClasses, []*subgemini.Net{t, a, y3})
	fmt.Println("gate-level circuit:", c)

	res, err := subgemini.Find(c, and2Pattern(), subgemini.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAND2 coverings found: %d (u1+u2 qualifies; u3+u4 does not — t has reconvergent fanout into u5)\n", len(res.Instances))
	for i, inst := range res.Instances {
		fmt.Printf("  covering #%d:", i+1)
		for _, dev := range inst.Devices() {
			fmt.Printf(" %s", dev.Name)
		}
		fmt.Println()
	}

	// A 2-input XOR built from four NANDs contains overlapping NAND-pair
	// structures; MatchAll enumerates every covering option so a mapper
	// can choose among them.
	x := subgemini.New("xor4nand")
	xa, xb := x.AddNet("A"), x.AddNet("B")
	m := x.AddNet("m")
	p, q, y := x.AddNet("p"), x.AddNet("q"), x.AddNet("y")
	x.MustAddDevice("n1", "nand2", nandClasses, []*subgemini.Net{xa, xb, m})
	x.MustAddDevice("n2", "nand2", nandClasses, []*subgemini.Net{xa, m, p})
	x.MustAddDevice("n3", "nand2", nandClasses, []*subgemini.Net{xb, m, q})
	x.MustAddDevice("n4", "nand2", nandClasses, []*subgemini.Net{p, q, y})

	pair := subgemini.New("nandpair")
	pa, pb, pc := pair.AddNet("A"), pair.AddNet("B"), pair.AddNet("C")
	pm, py := pair.AddNet("m"), pair.AddNet("Y")
	pair.MustAddDevice("g1", "nand2", nandClasses, []*subgemini.Net{pa, pb, pm})
	pair.MustAddDevice("g2", "nand2", nandClasses, []*subgemini.Net{pm, pc, py})
	for _, port := range []string{"A", "B", "C", "m", "Y"} {
		// m is exported too: in the XOR the middle net fans out, so a
		// covering must allow extra loads on it.
		if err := pair.MarkPort(port); err != nil {
			panic(err)
		}
	}
	res, err = subgemini.Find(x, pair, subgemini.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNAND-pair coverings in a 4-NAND XOR: %d\n", len(res.Instances))
	for i, inst := range res.Instances {
		fmt.Printf("  option #%d:", i+1)
		for _, dev := range inst.Devices() {
			fmt.Printf(" %s", dev.Name)
		}
		fmt.Println()
	}
}
