// Quickstart: parse a small transistor netlist, search it for NAND2 and
// inverter patterns, and print where they are.
//
// Run with:  go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"subgemini"
)

// A two-gate circuit: y = NAND(a, b), z = NOT(y), flat at transistor level.
const circuitSrc = `
* quickstart circuit
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
MP3 z y VDD pmos
MN3 z y GND nmos
.END
`

// The NAND2 pattern as a .SUBCKT: A, B, Y are its external nets (ports);
// n1 is internal, so a match may not have extra connections on it.
const patternSrc = `
.GLOBAL VDD GND
.SUBCKT NAND2 A B Y
MP1 Y A VDD pmos
MP2 Y B VDD pmos
MN1 Y A n1 nmos
MN2 n1 B GND nmos
.ENDS
`

func main() {
	file, err := subgemini.ParseNetlist(circuitSrc, "quickstart.sp")
	if err != nil {
		log.Fatal(err)
	}
	circuit, err := file.MainCircuit("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("circuit:", circuit)

	patFile, err := subgemini.ParseNetlist(patternSrc, "nand2.sp")
	if err != nil {
		log.Fatal(err)
	}
	nand2, err := patFile.Pattern("NAND2")
	if err != nil {
		log.Fatal(err)
	}

	opts := subgemini.Options{Globals: []string{"VDD", "GND"}}
	res, err := subgemini.Find(circuit, nand2, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNAND2: %d instance(s)\n", len(res.Instances))
	for i, inst := range res.Instances {
		fmt.Printf("  #%d:", i+1)
		for _, d := range inst.Devices() {
			fmt.Printf(" %s", d.Name)
		}
		fmt.Println()
	}
	fmt.Println("  stats:", res.Report.String())

	// The built-in cell library provides common patterns directly.
	res, err = subgemini.Find(circuit, subgemini.Cell("INV").Pattern(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nINV: %d instance(s)\n", len(res.Instances))
	for i, inst := range res.Instances {
		fmt.Printf("  #%d:", i+1)
		for _, d := range inst.Devices() {
			fmt.Printf(" %s", d.Name)
		}
		fmt.Println()
	}
}
