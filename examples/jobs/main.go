// Jobs: drive subgeminid's multi-circuit store and async job engine —
// upload named circuits, submit an extract job, poll it, and fetch the
// result, using the exported wire types so a Go client never hand-writes
// JSON.  The walkthrough runs the service in-process with a temporary
// data directory, then reopens it to show the circuits surviving a
// restart.
//
// Run with:  go run ./examples/jobs
//
// Against a real daemon the flow is identical over HTTP:
//
//	subgeminid -addr :8080 -data-dir /var/lib/subgeminid -globals VDD,GND
//	curl -X PUT --data-binary @chip.sp localhost:8080/v1/circuits/chip
//	curl -X POST -d '{"kind":"extract","extract":{"circuit":"chip"}}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/j-000000
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"subgemini"
)

// Two main circuits: a NAND feeding an inverter, and an inverter chain.
const nandSrc = `
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
MP3 z y VDD pmos
MN3 z y GND nmos
.END
`

const chainSrc = `
.GLOBAL VDD GND
MP1 b a VDD pmos
MN1 b a GND nmos
MP2 c b VDD pmos
MN2 c b GND nmos
.END
`

func main() {
	dataDir, err := os.MkdirTemp("", "subgemini-jobs-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	base, shutdown := serve(dataDir)

	// 1. Upload two named circuits.  PUT /v1/circuits/{name} stores each
	// under its name and — because the server has a data directory —
	// snapshots it to disk.
	for name, src := range map[string]string{"chip": nandSrc, "chain": chainSrc} {
		var info subgemini.ServerCircuitInfo
		put(base+"/v1/circuits/"+name, src, &info)
		fmt.Printf("stored %-5s: %d devices, %d nets, snapshot=%v\n",
			info.Key, info.Devices, info.Nets, info.Snapshot)
	}

	// 2. Synchronous matches select a circuit per request.
	var match subgemini.ServerMatchResponse
	post(base+"/v1/match", subgemini.ServerMatchRequest{Circuit: "chain", Pattern: "INV"}, &match)
	fmt.Printf("\nINV on chain: %d instance(s)\n", match.Count)

	// 3. Submit an asynchronous extract job: convert chip's transistors to
	// gates on a worker, off the request path, and store the result as a
	// new circuit.
	var job subgemini.ServerJobView
	post(base+"/v1/jobs", subgemini.ServerJobRequest{
		Kind: "extract",
		Extract: &subgemini.ServerExtractRequest{
			Circuit:        "chip",
			Cells:          []string{"NAND2", "INV"},
			StoreAs:        "chip_gates",
			IncludeNetlist: true,
		},
	}, &job)
	fmt.Printf("\nsubmitted job %s (%s), state %s\n", job.ID, job.Kind, job.State)

	// 4. Poll until the job reaches a terminal state.
	for !job.State.Terminal() {
		time.Sleep(10 * time.Millisecond)
		get(base+"/v1/jobs/"+job.ID, &job)
	}
	fmt.Printf("job %s finished: %s\n", job.ID, job.State)

	// 5. Fetch the result from the job record.
	var res subgemini.ServerExtractResponse
	if err := json.Unmarshal(job.Result, &res); err != nil {
		log.Fatal(err)
	}
	for _, x := range res.Extractions {
		fmt.Printf("  extracted %-6s ×%d\n", x.Cell, x.Count)
	}
	fmt.Printf("gate-level result stored as %q (%d devices):\n%s\n",
		res.StoredAs, res.Devices, indent(res.Netlist))

	// 6. Restart: close the server, reopen over the same data directory —
	// all three circuits (the two uploads and the extracted result) reload
	// from their snapshots.
	shutdown()
	base, shutdown = serve(dataDir)
	defer shutdown()

	var list []subgemini.ServerCircuitInfo
	get(base+"/v1/circuits", &list)
	fmt.Println("after restart the store holds:")
	for _, info := range list {
		fmt.Printf("  %-10s %d devices\n", info.Key, info.Devices)
	}
	post(base+"/v1/match", subgemini.ServerMatchRequest{Circuit: "chip", Pattern: "NAND2"}, &match)
	fmt.Printf("NAND2 on reloaded chip: %d instance(s)\n", match.Count)
}

// serve boots the matching service in-process on an ephemeral port and
// returns its base URL plus a shutdown function that drains jobs and
// flushes snapshots.
func serve(dataDir string) (string, func()) {
	srv, err := subgemini.NewServer(subgemini.ServerConfig{
		Globals: []string{"VDD", "GND"},
		DataDir: dataDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			log.Fatal(err)
		}
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimSpace(s), "\n", "\n  ")
}

// put sends raw netlist source, post sends v as JSON, get fetches; each
// decodes the reply into out and fails on an error status.
func put(url, body string, out any) {
	req, err := http.NewRequest("PUT", url, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	do(req, out)
}

func post(url string, v, out any) {
	body, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	do(req, out)
}

func get(url string, out any) {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		log.Fatal(err)
	}
	do(req, out)
}

func do(req *http.Request, out any) {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		log.Fatalf("%s %s: %s\n%s", req.Method, req.URL, resp.Status, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
