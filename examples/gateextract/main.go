// Gate extraction: convert a transistor-level ripple-carry adder into a
// gate-level netlist by iterated subcircuit extraction — the application
// the paper's introduction leads with ("converting a transistor netlist
// into a gate netlist involves finding the subcircuits representing gates
// and replacing them with the corresponding gates").
//
// Run with:  go run ./examples/gateextract
package main

import (
	"fmt"
	"log"
	"os"

	"subgemini"
)

const bits = 4

func main() {
	ckt := buildAdder(bits)
	fmt.Println("before extraction:", ckt)

	// Extract largest-first (the §V.A partial order): the matcher itself
	// orders the cells, we just list which ones to look for.
	cells := []*subgemini.CellDef{
		subgemini.Cell("FA"),
		subgemini.Cell("NAND2"),
		subgemini.Cell("INV"),
	}
	counts, err := subgemini.ExtractCells(ckt, cells, subgemini.ExtractOptions{
		Globals: []string{"VDD", "GND"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range counts {
		fmt.Printf("  extracted %-6s × %d\n", e.Cell, e.Count)
	}
	fmt.Println("after extraction: ", ckt)

	fmt.Println("\ngate-level netlist:")
	if err := subgemini.WriteNetlist(os.Stdout, ckt); err != nil {
		log.Fatal(err)
	}
}

// buildAdder tiles the library's 28-transistor mirror full adder into a
// ripple-carry adder, producing a flat transistor netlist.
func buildAdder(n int) *subgemini.Circuit {
	c := subgemini.New(fmt.Sprintf("adder%d", n))
	vdd, gnd := c.AddNet("VDD"), c.AddNet("GND")
	fa := subgemini.Cell("FA")
	carry := c.AddNet("cin")
	for i := 0; i < n; i++ {
		next := c.AddNet(fmt.Sprintf("c%d", i+1))
		fa.MustInstantiate(c, fmt.Sprintf("fa%d", i), map[string]*subgemini.Net{
			"A":   c.AddNet(fmt.Sprintf("a%d", i)),
			"B":   c.AddNet(fmt.Sprintf("b%d", i)),
			"CI":  carry,
			"S":   c.AddNet(fmt.Sprintf("s%d", i)),
			"CO":  next,
			"VDD": vdd, "GND": gnd,
		})
		carry = next
	}
	return c
}
