// Server: run the subgeminid matching service in-process and drive it as
// an HTTP client using the exported wire types — the same request/response
// structs cmd/subgeminid serves, so a Go client never hand-writes JSON.
//
// Run with:  go run ./examples/server
//
// For the daemon itself (flags, graceful shutdown) see cmd/subgeminid; the
// endpoints are identical.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"subgemini"
)

// A two-gate circuit: y = NAND(a, b), z = NOT(y), flat at transistor level.
const circuitSrc = `
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
MP3 z y VDD pmos
MN3 z y GND nmos
.END
`

// A user-defined pattern uploaded inline with the first request; it is
// compiled once and cached under its .SUBCKT name for later requests.
const myInvSrc = `
.GLOBAL VDD GND
.SUBCKT MYINV A Y
MP1 Y A VDD pmos
MN1 Y A GND nmos
.ENDS
`

func main() {
	file, err := subgemini.ParseNetlist(circuitSrc, "chip.sp")
	if err != nil {
		log.Fatal(err)
	}
	circuit, err := file.MainCircuit("chip")
	if err != nil {
		log.Fatal(err)
	}

	// The service is an http.Handler: embed it, or serve it standalone the
	// way cmd/subgeminid does.
	srv, err := subgemini.NewServer(subgemini.ServerConfig{
		Circuit: circuit,
		Globals: []string{"VDD", "GND"},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// One match against a built-in library cell.
	var match subgemini.ServerMatchResponse
	post(base+"/v1/match", subgemini.ServerMatchRequest{Pattern: "NAND2"}, &match)
	fmt.Printf("\nNAND2: %d instance(s), cache hit: %v\n", match.Count, match.CacheHit)
	for i, inst := range match.Instances {
		fmt.Printf("  #%d: %v\n", i+1, inst.Devices)
	}

	// A batch: the cached NAND2 (now a hit), an inline pattern compiled on
	// the fly, and a per-request timeout in milliseconds.
	var batch subgemini.ServerBatchResponse
	post(base+"/v1/match/batch", subgemini.ServerBatchRequest{
		Requests: []subgemini.ServerMatchRequest{
			{Pattern: "NAND2"},
			{Netlist: myInvSrc, TimeoutMS: int(time.Second / time.Millisecond)},
		},
	}, &batch)
	fmt.Println()
	for _, item := range batch.Results {
		if item.Error != "" {
			fmt.Printf("batch[%d] %s: HTTP %d %s\n", item.Index, item.Pattern, item.Status, item.Error)
			continue
		}
		fmt.Printf("batch[%d] %s: %d instance(s), cache hit: %v\n",
			item.Index, item.Pattern, item.Match.Count, item.Match.CacheHit)
	}

	// MYINV is cached now, so the name alone works.
	post(base+"/v1/match", subgemini.ServerMatchRequest{Pattern: "MYINV"}, &match)
	fmt.Printf("\nMYINV by name: %d instance(s), cache hit: %v\n", match.Count, match.CacheHit)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("\nmetrics excerpt:")
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if bytes.Contains(line, []byte("cache")) || bytes.Contains(line, []byte("match_runs")) {
			fmt.Printf("  %s\n", line)
		}
	}
}

// post sends v as JSON and decodes the reply into out, failing on any
// non-200 status.
func post(url string, v, out any) {
	body, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		log.Fatalf("POST %s: %s\n%s", url, resp.Status, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
