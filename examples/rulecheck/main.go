// Rule checking: review a circuit for questionable constructs described as
// pattern circuits (paper §I), and demonstrate the special-signal effect of
// paper Fig. 7 — without treating VDD/GND as special, the inverter pattern
// is "found" inside every NAND gate.
//
// Run with:  go run ./examples/rulecheck
package main

import (
	"fmt"
	"log"

	"subgemini"
)

// Note there is no .GLOBAL directive: whether VDD and GND are special is
// decided per matching run via Options.Globals, so the Fig. 7 comparison
// below can run both ways on the same netlist.
const src = `
* a sloppy bus driver: an nmos pull-up and a pmos pull-down (degraded
* levels), plus one honest NAND2 gate
Mbad1 bus en VDD nmos
Mbad2 bus enb GND pmos
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
.END
`

// build parses a fresh copy of the circuit.  Marking nets global mutates a
// circuit in place, so each run below gets its own copy.
func build() *subgemini.Circuit {
	file, err := subgemini.ParseNetlist(src, "driver.sp")
	if err != nil {
		log.Fatal(err)
	}
	ckt, err := file.MainCircuit("driver")
	if err != nil {
		log.Fatal(err)
	}
	return ckt
}

func main() {
	ckt := build()
	fmt.Println("circuit:", ckt)

	// The rule library is data: each rule is itself a pattern circuit, so
	// adding a rule means writing a subcircuit, not code.
	fmt.Println("\nrule check (VDD/GND special):")
	violations, err := subgemini.CheckRules(ckt, subgemini.StandardRules(), []string{"VDD", "GND"})
	if err != nil {
		log.Fatal(err)
	}
	if len(violations) == 0 {
		fmt.Println("  clean")
	}
	for _, v := range violations {
		fmt.Printf("  %-14s %s\n", v.Rule.Name+":", v.Describe())
	}

	// Fig. 7: the inverter pattern inside the NAND gate.
	inv := subgemini.Cell("INV")
	res, err := subgemini.Find(build(), inv.Pattern(), subgemini.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nINV without special signals: %d instance(s)  <- false hit inside the NAND (Fig. 7)\n", len(res.Instances))
	for _, inst := range res.Instances {
		fmt.Print("   ")
		for _, d := range inst.Devices() {
			fmt.Printf(" %s", d.Name)
		}
		fmt.Println()
	}
	res, err = subgemini.Find(build(), inv.Pattern(), subgemini.Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("INV with VDD/GND special:    %d instance(s)\n", len(res.Instances))
}
