GO ?= go

.PHONY: all tier1 build test vet lint-logs race diff diff-phase2 diff-incremental bench bench-smoke bench-sweep bench-phase2 bench-incremental smoke-daemon chaos-smoke bench-compare docs docs-check clean

all: tier1

# Tier-1 gate: static checks plus the full test suite under the race
# detector (the server's aggregation and cache paths are concurrent and
# must stay race-clean).  This is a superset of the ROADMAP.md verify
# command (go build ./... && go test ./...); the race run includes
# cmd/docgen's staleness test, so a stale ALGORITHM.md fails tier-1.
# The differential run and the benchmark smoke keep the Phase I engines
# honest: every engine configuration must agree bit for bit, and the
# benchmarks must at least compile and complete one iteration.
tier1: vet lint-logs docs-check race diff bench-smoke smoke-daemon chaos-smoke

# Engine differentials: Phase I legacy vs CSR vs striped CSR, Phase II
# whole-graph vs region-localized, and the incremental replay engine vs
# rebuild-and-full-match, on fixed and random circuits, twice (scratch-pool
# reuse across runs is part of the contract), under the race detector with
# the striping grain forced down.
diff: diff-incremental
	$(GO) test -race -count=2 -run 'TestPhase1Differential|TestPhase2Differential|TestScratchPoolReuse' ./internal/core/

# Incremental differential only: FindIncremental replay after random edit
# batches against the full-matcher oracle, bit-identical instances.
diff-incremental:
	$(GO) test -race -count=2 -run 'TestIncrementalDifferential|TestIncrementalFallbacks' ./internal/core/
	$(GO) test -race -count=2 ./internal/delta/

# Phase II differential only: the region engine against the whole-graph
# oracle, bit-identical instances and order across worker counts.
diff-phase2:
	$(GO) test -race -count=2 -run 'TestPhase2Differential' ./internal/core/

# One-iteration benchmark pass: catches bit-rot in the benchmark harness
# without paying for a real measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPhase1|BenchmarkFindScratch' -benchtime 1x ./internal/core/
	$(GO) test -run '^$$' -bench 'BenchmarkSweep' -benchtime 1x ./internal/sweep/

# Library-sweep table only: sweep vs sequential-loop timings across circuit
# sizes and worker counts, archived as BENCH_sweep.json.
bench-sweep:
	$(GO) run ./cmd/benchtab -table sweep -json BENCH_sweep.json

# Phase II engine table only: whole-graph legacy vs region-localized Phase II
# timings across workloads, archived as BENCH_phase2_region.json.
bench-phase2:
	$(GO) run ./cmd/benchtab -table phase2 -json BENCH_phase2_region.json

# Incremental-matching table only: re-match and re-sweep cost after delta
# edits of growing size, replaying from the versioned result cache vs
# recomputing from scratch, archived as BENCH_incremental.json.
bench-incremental:
	$(GO) run ./cmd/benchtab -table incremental -json BENCH_incremental.json

# Process-level daemon smoke: boot subgeminid with a temporary data
# directory, upload two circuits and a pattern library, run a sync match,
# an async extract job and an async sweep job, restart the daemon, and
# assert the circuits, the library, and the job records reload from the
# snapshots.
smoke-daemon:
	$(GO) run ./scripts/smoke_daemon

# Chaos smoke: the failure-mode counterpart of smoke-daemon.  Boots the
# real binary and rehearses a SIGKILL mid-job (boot recovery fails the
# interrupted record), an injected disk error (-faults flips /readyz and
# recovers), and overload (bulk endpoints shed 429 while a single match
# stays live and a pathological match is cut by its deadline, leak-free).
chaos-smoke:
	$(GO) run ./scripts/chaos_daemon

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Structured-logging boundary: code under internal/ must not import the
# legacy "log" package (internal/obs owns slog; printf-style lines lose
# the request_id correlation the telemetry layer provides).
lint-logs:
	$(GO) run ./scripts/lintlogs

race:
	$(GO) test -race ./...

# Regenerate the evaluation tables (EXPERIMENTS.md records the shapes) and
# archive them as a BENCH_<commit>.json snapshot for cross-PR comparison.
bench:
	$(GO) run ./cmd/benchtab -table all -json BENCH_$$(git rev-parse --short HEAD).json

# Compare the Go benchmarks between two git revisions with benchstat when
# it is installed, falling back to printing both runs side by side:
#   make bench-compare OLD=main NEW=HEAD
OLD ?= HEAD~1
NEW ?= HEAD
bench-compare:
	@tmp=$$(mktemp -d); \
	for rev in $(OLD) $(NEW); do \
		echo "== benchmarks at $$rev =="; \
		git -c advice.detachedHead=false worktree add -q $$tmp/$$rev $$rev && \
		( cd $$tmp/$$rev && $(GO) test -run '^$$' -bench 'BenchmarkPhase1|BenchmarkFindScratch' -benchtime 100x -count 3 ./internal/core/ ) \
			| tee $$tmp/$$rev.txt; \
		git worktree remove --force $$tmp/$$rev; \
	done; \
	if command -v benchstat >/dev/null; then benchstat $$tmp/$(OLD).txt $$tmp/$(NEW).txt; \
	else echo "(benchstat not installed; raw runs above)"; fi; \
	rm -rf $$tmp

# Rebuild the generated documentation sections (cmd/docgen): the tracer
# tables in ALGORITHM.md from the paper's Fig. 1 example, and the metrics
# reference + fault-point tables in OPERATIONS.md from the server and
# faults registries; docs-check fails when either is stale.
docs:
	$(GO) run ./cmd/docgen -write ALGORITHM.md OPERATIONS.md

docs-check:
	$(GO) run ./cmd/docgen -check ALGORITHM.md OPERATIONS.md

clean:
	$(GO) clean ./...
