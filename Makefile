GO ?= go

.PHONY: all tier1 build test vet race bench docs docs-check clean

all: tier1

# Tier-1 gate: static checks plus the full test suite under the race
# detector (the server's aggregation and cache paths are concurrent and
# must stay race-clean).  This is a superset of the ROADMAP.md verify
# command (go build ./... && go test ./...); the race run includes
# cmd/docgen's staleness test, so a stale ALGORITHM.md fails tier-1.
tier1: vet docs-check race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Regenerate the evaluation tables (EXPERIMENTS.md records the shapes).
bench:
	$(GO) run ./cmd/benchtab -table all

# Rebuild the tracer-generated tables in ALGORITHM.md from the paper's
# Fig. 1 example (cmd/docgen); docs-check fails when they are stale.
docs:
	$(GO) run ./cmd/docgen -write ALGORITHM.md

docs-check:
	$(GO) run ./cmd/docgen -check ALGORITHM.md

clean:
	$(GO) clean ./...
