GO ?= go

.PHONY: all tier1 build test vet race bench clean

all: tier1

# Tier-1 gate: static checks plus the full test suite under the race
# detector (the server's aggregation and cache paths are concurrent and
# must stay race-clean).  This is a superset of the ROADMAP.md verify
# command (go build ./... && go test ./...).
tier1: vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Regenerate the evaluation tables (EXPERIMENTS.md records the shapes).
bench:
	$(GO) run ./cmd/benchtab -table all

clean:
	$(GO) clean ./...
