// Tests of the public facade: every re-exported entry point must work as
// documented in the package comment, because this is the only surface a
// downstream user sees.
package subgemini_test

import (
	"strings"
	"testing"

	"subgemini"
)

const facadeSrc = `
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
MP3 z y VDD pmos
MN3 z y GND nmos
.END
`

func parseMain(t *testing.T) *subgemini.Circuit {
	t.Helper()
	f, err := subgemini.ParseNetlist(facadeSrc, "facade.sp")
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.MainCircuit("facade")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFacadeQuickstartFlow(t *testing.T) {
	c := parseMain(t)
	res, err := subgemini.Find(c, subgemini.Cell("NAND2").Pattern(),
		subgemini.Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d NAND2s, want 1", len(res.Instances))
	}
	devs := res.Instances[0].Devices()
	if len(devs) != 4 {
		t.Fatalf("instance has %d devices, want 4", len(devs))
	}
}

func TestFacadeCellLibrary(t *testing.T) {
	if subgemini.Cell("NAND2") == nil || subgemini.Cell("DFF") == nil {
		t.Fatal("library cells missing")
	}
	if subgemini.Cell("NOPE") != nil {
		t.Error("unknown cell returned")
	}
	if got := len(subgemini.Cells()); got < 15 {
		t.Errorf("library has %d cells, want >= 15", got)
	}
}

func TestFacadeNaive(t *testing.T) {
	c := parseMain(t)
	insts, err := subgemini.FindNaive(c, subgemini.Cell("INV").Pattern(), []string{"VDD", "GND"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 {
		t.Errorf("naive found %d INVs, want 1", len(insts))
	}
}

func TestFacadeCompare(t *testing.T) {
	a, b := parseMain(t), parseMain(t)
	res, err := subgemini.Compare(a, b, subgemini.CompareOptions{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Errorf("identical circuits not isomorphic: %s", res.Reason)
	}
}

func TestFacadeExtractAndWrite(t *testing.T) {
	c := parseMain(t)
	counts, err := subgemini.ExtractCells(c,
		[]*subgemini.CellDef{subgemini.Cell("NAND2"), subgemini.Cell("INV")},
		subgemini.ExtractOptions{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range counts {
		total += e.Count
	}
	if total != 2 {
		t.Fatalf("extracted %d cells, want 2", total)
	}
	var out strings.Builder
	if err := subgemini.WriteNetlist(&out, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "NAND2") || !strings.Contains(out.String(), "INV") {
		t.Errorf("gate netlist missing cells:\n%s", out.String())
	}
}

func TestFacadeRuleCheck(t *testing.T) {
	c := subgemini.New("bad")
	vdd := c.AddNet("VDD")
	x, en := c.AddNet("x"), c.AddNet("en")
	classes := []subgemini.TermClass{subgemini.ClassDS, subgemini.ClassGate, subgemini.ClassDS}
	if _, err := c.AddDevice("m1", "nmos", classes, []*subgemini.Net{vdd, en, x}); err != nil {
		t.Fatal(err)
	}
	vios, err := subgemini.CheckRules(c, subgemini.StandardRules(), []string{"VDD", "GND"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vios) != 1 || vios[0].Rule.Name != "nmos-pullup" {
		t.Errorf("violations = %v, want one nmos-pullup", vios)
	}
}

func TestFacadeMatcherReuse(t *testing.T) {
	c := parseMain(t)
	m, err := subgemini.NewMatcher(c, subgemini.Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		cell string
		want int
	}{{"NAND2", 1}, {"INV", 1}, {"NOR2", 0}} {
		res, err := m.Find(subgemini.Cell(tc.cell).Pattern())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Instances) != tc.want {
			t.Errorf("%s: found %d, want %d", tc.cell, len(res.Instances), tc.want)
		}
	}
}

func TestFacadeSubcktRoundTrip(t *testing.T) {
	pat := subgemini.Cell("NAND2").Pattern()
	var buf strings.Builder
	if err := subgemini.WriteSubckt(&buf, pat); err != nil {
		t.Fatal(err)
	}
	f, err := subgemini.ParseNetlist(buf.String(), "rt.sp")
	if err != nil {
		t.Fatal(err)
	}
	back, err := f.Pattern("NAND2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := subgemini.Compare(pat, back, subgemini.CompareOptions{PortsByName: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Errorf("round-tripped pattern differs: %s", res.Reason)
	}
}

func TestFacadeVerilogRoundTrip(t *testing.T) {
	c := parseMain(t)
	var buf strings.Builder
	if err := subgemini.WriteVerilog(&buf, c, "m"); err != nil {
		t.Fatal(err)
	}
	mod, err := subgemini.ParseVerilog(strings.NewReader(buf.String()), "m.v")
	if err != nil {
		t.Fatal(err)
	}
	mod.Circuit.MarkGlobal("VDD")
	mod.Circuit.MarkGlobal("GND")
	res, err := subgemini.Compare(c, mod.Circuit, subgemini.CompareOptions{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Errorf("verilog round trip differs: %s", res.Reason)
	}
}

func TestFacadeJSONRoundTrip(t *testing.T) {
	c := parseMain(t)
	var buf strings.Builder
	if err := subgemini.EncodeCircuitJSON(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := subgemini.DecodeCircuitJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := subgemini.Compare(c, back, subgemini.CompareOptions{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Errorf("JSON round trip differs: %s", res.Reason)
	}
}

func TestFacadeRecognizeGates(t *testing.T) {
	c := parseMain(t)
	res, err := subgemini.RecognizeGates(c, "VDD", "GND")
	if err != nil {
		t.Fatal(err)
	}
	kinds := res.KindCounts()
	if kinds["NAND2"] != 1 || kinds["INV"] != 1 {
		t.Errorf("recognized %v, want one NAND2 and one INV", kinds)
	}
}

func TestFacadeHierarchicalCompare(t *testing.T) {
	src := `
.GLOBAL VDD GND
.SUBCKT I A Y
MP Y A VDD pmos
MN Y A GND nmos
.ENDS
X1 a b I
.END
`
	fa, err := subgemini.ParseNetlist(src, "a.sp")
	if err != nil {
		t.Fatal(err)
	}
	fb, err := subgemini.ParseNetlist(src, "b.sp")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := subgemini.CompareHierarchical(fa, fb, subgemini.CompareOptions{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Isomorphic() {
		t.Errorf("identical hierarchical netlists differ:\n%s", rep.Summary())
	}
}

func TestFacadeFindParallel(t *testing.T) {
	c := parseMain(t)
	res, err := subgemini.FindParallel(c, subgemini.Cell("INV").Pattern(),
		subgemini.Options{Globals: []string{"VDD", "GND"}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Errorf("parallel found %d, want 1", len(res.Instances))
	}
}
